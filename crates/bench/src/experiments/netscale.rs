//! NETSCALE — consensus under a lossy, churning network at `n = 10⁴`.
//!
//! The network-model subsystem makes message loss, duplication, and
//! churn (leave + rejoin) first-class scenario axes. This experiment
//! measures what they cost: full `ben_or_hybrid` with *split* proposals
//! (so the protocol genuinely has to converge instead of taking the
//! unanimity fast path) at cluster scale, sweeping
//!
//! * the **loss rate** (0 → 50 000 ppm = 5 % of all messages dropped,
//!   each fate an independent PRF decision per link and message), and
//! * the **churn rate** (0 → 1 % of processes leave mid-protocol and
//!   rejoin with a fresh mailbox a few delays later),
//!
//! and reporting decision rounds, decision latency (virtual time of the
//! last decision), deciders, and scheduler throughput per cell. Constant
//! network delay keeps the broadcast batching path hot, so the sweep
//! also exercises the batched lazy-survivor scan at `3n²`-message scale.
//!
//! Every cell is an ordinary declarative scenario: deterministic,
//! replayable, checkpointable — the resumable variant below is what the
//! time-budgeted CI gate runs.

use ofa_core::Algorithm;
use ofa_metrics::{fmt_f64, Table};
use ofa_scenario::{Backend, ChurnPlan, CostModel, DelayModel, Engine, Scenario, VirtualTime};
use ofa_sim::Sim;
use ofa_topology::{Partition, ProcessId};
use std::path::Path;
use std::time::Instant;

/// The full sweep's system size (the paper's cluster-scale regime).
pub const FULL_N: usize = 10_000;

/// The CI smoke size: same axes, seconds per cell.
pub const QUICK_N: usize = 2_000;

/// One sweep cell: `(loss_ppm, churn_ppm)`. Loss and churn are swept
/// separately against the shared lossless baseline, so a row's movement
/// is attributable to one axis. The loss axis is fine-grained through
/// the 0–5 % regime: up to [`LIVENESS_LOSS_PPM`] every stable process
/// must still decide (asserted); above it the sweep *measures* where
/// liveness starts degrading instead of asserting it away — that
/// knee is the loss-aware-liveness datum this experiment exists for.
pub const CELLS: [(u32, u32); 9] = [
    (0, 0),
    (100, 0),
    (1_000, 0),
    (5_000, 0),
    (10_000, 0),
    (25_000, 0),
    (50_000, 0),
    (0, 1_000),
    (0, 10_000),
];

/// The highest loss rate at which the sweep still *asserts* full
/// liveness (every never-churned process decides within the round cap).
/// Above 1 % loss the protocol still decides in these runs, but the
/// guarantee is empirical, not asserted — the table records it.
pub const LIVENESS_LOSS_PPM: u32 = 10_000;

/// The CI smoke cells: baseline, 1 % loss, 1 % churn.
pub const QUICK_CELLS: [(u32, u32); 3] = [(0, 0), (10_000, 0), (0, 10_000)];

/// One row of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct NetRow {
    /// System size.
    pub n: usize,
    /// Message loss rate, ppm.
    pub loss_ppm: u32,
    /// Fraction of processes churning, ppm.
    pub churn_ppm: u32,
    /// Deepest deciding round.
    pub rounds: u64,
    /// Virtual time of the last decision.
    pub decision_time: u64,
    /// Processes that decided.
    pub deciders: usize,
    /// Scheduler events processed.
    pub events: u64,
    /// Wall-clock seconds for the run.
    pub wall_secs: f64,
}

/// The scenario one cell runs (exposed so the CI gate and tests time
/// exactly what the table reports). `churn_ppm` of the `n` processes —
/// spread evenly across the id space, so across clusters — leave at
/// staggered times mid-protocol and rejoin three delays later.
pub fn scenario(n: usize, loss_ppm: u32, churn_ppm: u32) -> Scenario {
    let m = (n / 100).max(1);
    let mut churn = ChurnPlan::new();
    let count = (n as u64 * u64::from(churn_ppm) / 1_000_000) as usize;
    if let Some(stride) = n.checked_div(count) {
        for j in 0..count {
            let leave = 1_500 + (j as u64 % 4) * 500;
            churn = churn.leave_rejoin(
                ProcessId(j * stride),
                VirtualTime::from_ticks(leave),
                VirtualTime::from_ticks(leave + 3_000),
            );
        }
    }
    Scenario::new(Partition::even(n, m), Algorithm::CommonCoin)
        .proposals_split(n / 2)
        .seed(42)
        .delay(DelayModel::Constant(1_000))
        .loss_ppm(loss_ppm)
        .churn(churn)
        .costs(CostModel {
            send_cost: 0,
            recv_cost: 1,
            sm_op_cost: 10,
            coin_cost: 1,
        })
        .max_rounds(64)
        .max_events(u64::MAX)
        .engine(Engine::EventDriven)
}

const TITLE: &str = "NETSCALE: consensus under loss and churn — full ben_or_hybrid, split \
                     proposals, m=n/100 clusters, constant delay, single thread";
const COLUMNS: [&str; 9] = [
    "n",
    "loss ppm",
    "churn ppm",
    "rounds",
    "decision t",
    "deciders",
    "events",
    "wall [s]",
    "events/s",
];

/// Checks the invariants a cell must satisfy: safety always, at every
/// rate — lost messages may stall a decision but can never split it.
/// Liveness (every never-churned process decides) is asserted only up
/// to [`LIVENESS_LOSS_PPM`]; beyond that the sweep reports deciders
/// rather than demanding them, and only requires that *someone* decided
/// so every row carries a meaningful round/latency datum.
fn assert_cell(out: &ofa_scenario::Outcome, n: usize, loss_ppm: u32, churn_ppm: u32) {
    assert!(
        out.agreement_holds(),
        "netscale n={n} loss={loss_ppm} churn={churn_ppm}: agreement violated"
    );
    let churned = (n as u64 * u64::from(churn_ppm) / 1_000_000) as usize;
    if loss_ppm <= LIVENESS_LOSS_PPM {
        assert!(
            out.deciders() >= n - churned,
            "netscale n={n} loss={loss_ppm} churn={churn_ppm}: only {} of {} stable \
             processes decided",
            out.deciders(),
            n - churned
        );
    } else {
        assert!(
            out.deciders() > 0,
            "netscale n={n} loss={loss_ppm} churn={churn_ppm}: nobody decided"
        );
    }
}

fn sweep_row(table: &mut Table, rows: &mut Vec<NetRow>, row: NetRow) {
    let events_per_sec = row.events as f64 / row.wall_secs.max(f64::EPSILON);
    table.row([
        row.n.to_string(),
        row.loss_ppm.to_string(),
        row.churn_ppm.to_string(),
        row.rounds.to_string(),
        VirtualTime::from_ticks(row.decision_time).to_string(),
        row.deciders.to_string(),
        row.events.to_string(),
        fmt_f64(row.wall_secs, 2),
        format!("{events_per_sec:.2e}"),
    ]);
    rows.push(row);
}

/// Runs the sweep at size `n` over `cells`; returns the rows (for
/// assertions) and the table.
///
/// # Panics
///
/// Panics if any cell violates agreement, if a cell at or below
/// [`LIVENESS_LOSS_PPM`] loses a decider that never churned (those
/// rates are well inside the protocol's fault budget, so anything else
/// is an engine regression), or if a high-loss cell decides nowhere.
pub fn run(n: usize, cells: &[(u32, u32)]) -> (Vec<NetRow>, Table) {
    let mut table = Table::new(TITLE, &COLUMNS);
    let mut rows = Vec::new();
    for &(loss_ppm, churn_ppm) in cells {
        let out = Sim.run(&scenario(n, loss_ppm, churn_ppm));
        assert_cell(&out, n, loss_ppm, churn_ppm);
        sweep_row(
            &mut table,
            &mut rows,
            NetRow {
                n,
                loss_ppm,
                churn_ppm,
                rounds: out.max_decision_round,
                decision_time: out.latest_decision_time.ticks(),
                deciders: out.deciders(),
                events: out.events_processed,
                wall_secs: out.elapsed.as_secs_f64(),
            },
        );
    }
    (rows, table)
}

/// Resumable variant of [`run`] for the time-budgeted CI gate — same
/// protocol as [`crate::experiments::escale::run_resumable`]: cells run
/// as chains of checkpointed legs, finished rows persist in a done file
/// under `dir`, and an expired `deadline` returns `paused = true` with
/// the in-flight snapshot saved for the next invocation. Deterministic
/// columns of finished rows are identical to a monolithic [`run`].
///
/// # Panics
///
/// Same protocol assertions as [`run`], plus on unwritable state files.
pub fn run_resumable(
    n: usize,
    cells: &[(u32, u32)],
    dir: &Path,
    deadline: Instant,
) -> (Vec<NetRow>, Table, bool) {
    let done_file = dir.join("netscale_done.txt");
    // Lines of "loss churn rounds decision_t deciders events wall_secs"
    // for cells finished by earlier invocations of this sweep.
    let mut done: Vec<(u32, u32, u64, u64, usize, u64, f64)> = std::fs::read_to_string(&done_file)
        .map(|text| {
            text.lines()
                .filter_map(|line| {
                    let mut it = line.split_whitespace();
                    Some((
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default();
    let mut table = Table::new(TITLE, &COLUMNS);
    let mut rows = Vec::new();
    let mut paused = false;
    for &(loss_ppm, churn_ppm) in cells {
        let row = if let Some(&(_, _, rounds, decision_time, deciders, events, wall_secs)) =
            done.iter().find(|d| d.0 == loss_ppm && d.1 == churn_ppm)
        {
            NetRow {
                n,
                loss_ppm,
                churn_ppm,
                rounds,
                decision_time,
                deciders,
                events,
                wall_secs,
            }
        } else {
            let cell = crate::resumable::run_cell(
                dir,
                &format!("netscale_{loss_ppm}_{churn_ppm}"),
                &scenario(n, loss_ppm, churn_ppm),
                1_000,
                deadline,
            );
            let Some(out) = cell.outcome else {
                paused = true;
                break;
            };
            assert_cell(&out, n, loss_ppm, churn_ppm);
            let row = NetRow {
                n,
                loss_ppm,
                churn_ppm,
                rounds: out.max_decision_round,
                decision_time: out.latest_decision_time.ticks(),
                deciders: out.deciders(),
                events: out.events_processed,
                wall_secs: cell.wall_secs,
            };
            done.push((
                loss_ppm,
                churn_ppm,
                row.rounds,
                row.decision_time,
                row.deciders,
                row.events,
                row.wall_secs,
            ));
            std::fs::create_dir_all(dir).expect("checkpoint state dir is writable");
            let text: String = done
                .iter()
                .map(|(l, c, r, t, d, e, w)| format!("{l} {c} {r} {t} {d} {e} {w}\n"))
                .collect();
            std::fs::write(&done_file, text).expect("done file is writable");
            row
        };
        sweep_row(&mut table, &mut rows, row);
    }
    if !paused {
        let _ = std::fs::remove_file(&done_file);
    }
    (rows, table, paused)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cells_hold_safety_under_loss_and_churn() {
        let (rows, table) = run(400, &[(0, 0), (10_000, 0), (0, 10_000)]);
        assert_eq!(table.len(), 3);
        // The baseline is lossless and churn-free; the loss cell drops
        // messages (strictly fewer deliveries than the baseline's); the
        // churn cell actually churned processes.
        assert!(rows[1].events < rows[0].events, "loss must drop deliveries");
        assert_eq!(rows[2].churn_ppm, 10_000);
        assert!(rows.iter().all(|r| r.deciders > 0));
    }

    #[test]
    fn high_loss_cells_hold_safety_past_the_liveness_line() {
        let (rows, table) = run(400, &[(25_000, 0), (50_000, 0)]);
        assert_eq!(table.len(), 2);
        // Past LIVENESS_LOSS_PPM the sweep only measures liveness — but
        // safety held (run asserts it) and the rows carry real decisions.
        assert!(rows.iter().all(|r| r.loss_ppm > LIVENESS_LOSS_PPM));
        assert!(rows.iter().all(|r| r.deciders > 0 && r.rounds >= 1));
    }

    #[test]
    fn resumable_sweep_matches_the_monolithic_rows() {
        let dir =
            std::env::temp_dir().join(format!("ofa-netscale-resumable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cells = [(10_000u32, 0u32), (0, 10_000)];
        let (mono, _) = run(300, &cells);
        let expired = Instant::now() - std::time::Duration::from_secs(1);
        let (rows, _, paused) = run_resumable(300, &cells, &dir, expired);
        assert!(paused, "expired budget must pause");
        assert!(rows.is_empty());
        let generous = Instant::now() + std::time::Duration::from_secs(600);
        let (rows, table, paused) = run_resumable(300, &cells, &dir, generous);
        assert!(!paused);
        assert_eq!(table.len(), 2);
        for (a, b) in mono.iter().zip(rows.iter()) {
            assert_eq!(a.loss_ppm, b.loss_ppm);
            assert_eq!(a.churn_ppm, b.churn_ppm);
            assert_eq!(a.rounds, b.rounds);
            assert_eq!(a.decision_time, b.decision_time);
            assert_eq!(a.deciders, b.deciders);
            assert_eq!(a.events, b.events);
        }
        assert!(!dir.join("netscale_done.txt").exists(), "state cleans up");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
