//! E6 — the §III-C comparison against the m&m model.
//!
//! Quantities compared: number of shared memories (`m` vs `n`) and
//! consensus-object invocations per process per phase (`1` vs `α_i + 1`).
//! The measured columns come from instrumented runs of both protocols
//! under the simulator; they must reproduce the analytic values.

use ofa_metrics::{fmt_f64, Table};
use ofa_mm::{analytic, measured};
use ofa_topology::{MmGraph, Partition};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scenario list: `(label, partition, graph)` with equal `n`.
pub fn scenarios() -> Vec<(String, Partition, MmGraph)> {
    let mut rng = StdRng::seed_from_u64(0xE6);
    vec![
        (
            "fig2 (n=5) vs {3,2}".into(),
            Partition::from_sizes(&[3, 2]).unwrap(),
            MmGraph::fig2(),
        ),
        (
            "ring(8) vs even(8,2)".into(),
            Partition::even(8, 2),
            MmGraph::ring(8),
        ),
        (
            "star(8) vs even(8,2)".into(),
            Partition::even(8, 2),
            MmGraph::star(8),
        ),
        (
            "grid(3x3) vs even(9,3)".into(),
            Partition::even(9, 3),
            MmGraph::grid(3, 3),
        ),
        (
            "gnp(10,0.3) vs even(10,2)".into(),
            Partition::even(10, 2),
            MmGraph::random_gnp(10, 0.3, &mut rng),
        ),
        (
            "complete(6) vs {6}".into(),
            Partition::single_cluster(6),
            MmGraph::complete(6),
        ),
    ]
}

/// Runs E6 and renders the table.
pub fn run() -> Table {
    let mut table = Table::new(
        "E6: hybrid vs m&m — memories and consensus-object invocations per process per phase",
        &[
            "scenario",
            "mem hybrid (m)",
            "mem m&m (n)",
            "inv hybrid",
            "inv m&m mean (a_i+1)",
            "inv m&m max",
            "measured hybrid",
            "measured m&m",
        ],
    );
    for (label, partition, graph) in scenarios() {
        let row = analytic(&label, &partition, &graph);
        let (hybrid_meas, mm_meas) = measured(&partition, &graph, 0xE6);
        table.row([
            row.label.clone(),
            row.hybrid_memories.to_string(),
            row.mm_memories.to_string(),
            fmt_f64(row.hybrid_invocations_per_phase, 1),
            fmt_f64(row.mm_invocations_mean, 2),
            row.mm_invocations_max.to_string(),
            fmt_f64(hybrid_meas, 2),
            fmt_f64(mm_meas, 2),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_matches_analytic() {
        for (label, partition, graph) in scenarios() {
            let row = analytic(&label, &partition, &graph);
            let (hybrid_meas, mm_meas) = measured(&partition, &graph, 1);
            assert!(
                (mm_meas - row.mm_invocations_mean).abs() < 1e-9,
                "{label}: measured m&m {mm_meas} != analytic {}",
                row.mm_invocations_mean
            );
            assert!(
                hybrid_meas <= 1.0 + 1e-9 && hybrid_meas > 0.4,
                "{label}: hybrid invocations/phase should be ~1, got {hybrid_meas}"
            );
            assert!(row.hybrid_memories <= row.mm_memories, "{label}");
        }
    }

    #[test]
    fn table_has_all_scenarios() {
        assert_eq!(run().len(), scenarios().len());
    }
}
