//! E2 — "One for all": the majority-cluster headline scenario.
//!
//! Paper, §I and §V: on Figure 1 (right), where `P[2] = {p2..p5}` holds a
//! majority, consensus survives **any** failure pattern that spares one
//! process of `P[2]` — here, 6 of 7 processes crash. The pure
//! message-passing baseline (same workload, clusters ignored) tolerates at
//! most `⌊(n-1)/2⌋ = 3` crashes and must stall.
//!
//! Implemented as one [`Sweep`]: a single base scenario (partition, crash
//! pattern, proposals) with one parameter-grid variant per protocol
//! configuration.

use ofa_core::{Algorithm, ProtocolConfig};
use ofa_metrics::Table;
use ofa_scenario::{Body, CrashPlan, Scenario, Sweep};
use ofa_sim::Sim;
use ofa_topology::{Partition, ProcessId};

/// Number of seeds per configuration.
pub const TRIALS: u64 = 10;

/// Round cap for the (expected-to-stall) baseline runs.
const STALL_CAP: u64 = 24;

/// The three protocol rows of the table.
const ROWS: [&str; 3] = [
    "hybrid Alg 2 (paper)",
    "hybrid Alg 3 (paper)",
    "pure message-passing Ben-Or",
];

/// Runs E2 and renders the table.
pub fn run(trials: u64) -> Table {
    let mut table = Table::new(
        "E2: 6-of-7 crashes, survivor p3 in majority cluster P[2] (fig1-right)",
        &[
            "protocol",
            "crashes",
            "survivor decides",
            "stalls (safe)",
            "wrong decisions",
        ],
    );
    let mut crash_all_but_p3 = CrashPlan::new();
    for i in [0usize, 1, 3, 4, 5, 6] {
        crash_all_but_p3 = crash_all_but_p3.crash_at_start(ProcessId(i));
    }
    // The round cap is part of each variant's ProtocolConfig below; the
    // base only fixes partition, crash pattern, and proposals.
    let base = Scenario::new(Partition::fig1_right(), Algorithm::LocalCoin)
        .proposals_split(3)
        .crashes(crash_all_but_p3);
    let report = Sweep::new(base)
        .seeds(0..trials)
        .vary(ROWS[0], |sc| {
            sc.config(ProtocolConfig::paper().with_max_rounds(STALL_CAP))
        })
        .vary(ROWS[1], |sc| {
            Scenario {
                body: Body::Algo(Algorithm::CommonCoin),
                ..sc
            }
            .config(ProtocolConfig::paper().with_max_rounds(STALL_CAP))
        })
        .vary(ROWS[2], |sc| {
            sc.config(ProtocolConfig::pure_message_passing().with_max_rounds(STALL_CAP))
        })
        .run(&Sim);

    for label in ROWS {
        let rows = report.variant(label);
        let survivor_decided = rows.outcomes().filter(|o| o.decisions[2].is_some()).count() as u64;
        let wrong =
            rows.len() as u64 - rows.outcomes().filter(|o| o.agreement_holds()).count() as u64;
        table.row([
            label.to_string(),
            "6/7".to_string(),
            format!("{survivor_decided}/{trials}"),
            format!("{}/{trials}", trials - survivor_decided),
            format!("{wrong}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_survives_baseline_stalls() {
        let t = run(4);
        // Hybrid rows decide everywhere.
        assert_eq!(t.rows()[0][2], "4/4", "{:?}", t.rows()[0]);
        assert_eq!(t.rows()[1][2], "4/4", "{:?}", t.rows()[1]);
        // Baseline stalls everywhere — but never decides wrongly.
        assert_eq!(t.rows()[2][2], "0/4", "{:?}", t.rows()[2]);
        assert_eq!(t.rows()[2][3], "4/4");
        for row in t.rows() {
            assert_eq!(row[4], "0", "indulgence: no wrong decision ever");
        }
    }
}
