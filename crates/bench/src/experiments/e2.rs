//! E2 — "One for all": the majority-cluster headline scenario.
//!
//! Paper, §I and §V: on Figure 1 (right), where `P[2] = {p2..p5}` holds a
//! majority, consensus survives **any** failure pattern that spares one
//! process of `P[2]` — here, 6 of 7 processes crash. The pure
//! message-passing baseline (same workload, clusters ignored) tolerates at
//! most `⌊(n-1)/2⌋ = 3` crashes and must stall.

use ofa_core::{Algorithm, ProtocolConfig};
use ofa_metrics::Table;
use ofa_sim::{CrashPlan, SimBuilder};
use ofa_topology::{Partition, ProcessId};

/// Number of seeds per configuration.
pub const TRIALS: u64 = 10;

/// Round cap for the (expected-to-stall) baseline runs.
const STALL_CAP: u64 = 24;

/// Runs E2 and renders the table.
pub fn run(trials: u64) -> Table {
    let mut table = Table::new(
        "E2: 6-of-7 crashes, survivor p3 in majority cluster P[2] (fig1-right)",
        &[
            "protocol",
            "crashes",
            "survivor decides",
            "stalls (safe)",
            "wrong decisions",
        ],
    );
    let partition = Partition::fig1_right();
    let crash_all_but_p3 = || {
        let mut plan = CrashPlan::new();
        for i in [0usize, 1, 3, 4, 5, 6] {
            plan = plan.crash_at_start(ProcessId(i));
        }
        plan
    };
    for (label, config) in [
        ("hybrid Alg 2 (paper)", ProtocolConfig::paper()),
        ("hybrid Alg 3 (paper)", ProtocolConfig::paper()),
        (
            "pure message-passing Ben-Or",
            ProtocolConfig::pure_message_passing(),
        ),
    ] {
        let algorithm = if label.contains("Alg 3") {
            Algorithm::CommonCoin
        } else {
            Algorithm::LocalCoin
        };
        let mut survivor_decided = 0u64;
        let mut stalled = 0u64;
        let mut wrong = 0u64;
        for seed in 0..trials {
            let out = SimBuilder::new(partition.clone(), algorithm)
                .config(config.with_max_rounds(STALL_CAP))
                .proposals_split(3)
                .crashes(crash_all_but_p3())
                .seed(seed)
                .run();
            if !out.agreement_holds() {
                wrong += 1;
            }
            if out.decisions[2].is_some() {
                survivor_decided += 1;
            } else {
                stalled += 1;
            }
        }
        table.row([
            label.to_string(),
            "6/7".to_string(),
            format!("{survivor_decided}/{trials}"),
            format!("{stalled}/{trials}"),
            format!("{wrong}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hybrid_survives_baseline_stalls() {
        let t = run(4);
        // Hybrid rows decide everywhere.
        assert_eq!(t.rows()[0][2], "4/4", "{:?}", t.rows()[0]);
        assert_eq!(t.rows()[1][2], "4/4", "{:?}", t.rows()[1]);
        // Baseline stalls everywhere — but never decides wrongly.
        assert_eq!(t.rows()[2][2], "0/4", "{:?}", t.rows()[2]);
        assert_eq!(t.rows()[2][3], "4/4");
        for row in t.rows() {
            assert_eq!(row[4], "0", "indulgence: no wrong decision ever");
        }
    }
}
