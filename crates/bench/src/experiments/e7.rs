//! E7 — the efficiency/scalability tradeoff (§I, §II extreme configurations).
//!
//! The paper's premise: intra-cluster shared memory is *efficient but does
//! not scale* (hardware contention grows with the number of sharers),
//! message passing *scales but is slow*. We model the non-scaling memory
//! by charging each consensus-object invocation `beta × cluster_size`
//! virtual ticks, against a network round-trip of ~1000 ticks, and sweep
//! the cluster count `m` for fixed `n`:
//!
//! * few clusters ⇒ expensive memory ops but fewer, shorter rounds
//!   (estimates pre-agreed);
//! * many clusters ⇒ cheap memory ops but more message rounds (coin luck).
//!
//! The crossover location moves with `beta` — exactly the tradeoff the
//! paper argues qualitatively.

use ofa_core::Algorithm;
use ofa_metrics::{fmt_f64, Summary, Table};
use ofa_scenario::{Backend, CostModel, DelayModel, Scenario};
use ofa_sim::Sim;
use ofa_topology::Partition;

/// Seeds per configuration.
pub const TRIALS: u64 = 15;

/// The fixed system size.
pub const N: usize = 12;

/// Contention factors swept (virtual ticks per sharer per memory op).
pub const BETAS: [u64; 3] = [1, 50, 400];

/// Cluster counts swept.
pub const MS: [usize; 5] = [1, 2, 3, 6, 12];

/// Runs E7; returns the latency matrix `[beta][m]` and the table.
pub fn run(trials: u64) -> (Vec<Vec<f64>>, Table) {
    let mut table = Table::new(
        "E7: mean decision latency (virtual ticks) vs cluster count m — n=12, Alg 2, sm cost = beta x cluster size, net delay ~1000",
        &["beta \\ m", "m=1", "m=2", "m=3", "m=6", "m=12"],
    );
    let mut matrix = Vec::new();
    for beta in BETAS {
        let mut row = vec![format!("beta={beta}")];
        let mut lats = Vec::new();
        for m in MS {
            let partition = Partition::even(N, m);
            let cluster_size = (N / m) as u64;
            let costs = CostModel::new().with_sm_op_cost(beta * cluster_size);
            let mut latency = Vec::new();
            for seed in 0..trials {
                let out = Sim.run(
                    &Scenario::new(partition.clone(), Algorithm::LocalCoin)
                        .proposals_split(N / 2)
                        .costs(costs)
                        .delay(DelayModel::Uniform { lo: 500, hi: 1500 })
                        .seed(seed),
                );
                if out.all_correct_decided {
                    latency.push(out.latest_decision_time.ticks() as f64);
                }
            }
            let s = Summary::of(latency.iter().copied());
            row.push(fmt_f64(s.mean, 0));
            lats.push(s.mean);
        }
        matrix.push(lats);
        table.row(row);
    }
    (matrix, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cheap_memory_favors_one_big_cluster() {
        let (matrix, _) = run(8);
        // beta=1: m=1 should be the cheapest configuration (1 round, sm
        // ops nearly free).
        let beta1 = &matrix[0];
        let min = beta1.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(beta1[0], min, "beta=1: m=1 should win: {beta1:?}");
        // And m=1 beats m=n clearly.
        assert!(beta1[0] < beta1[4], "{beta1:?}");
    }

    #[test]
    fn expensive_memory_erodes_the_big_cluster_advantage() {
        let (matrix, _) = run(8);
        // The m=1 latency must grow monotonically with beta...
        let m1: Vec<f64> = matrix.iter().map(|row| row[0]).collect();
        assert!(m1[0] <= m1[1] && m1[1] <= m1[2], "{m1:?}");
        // ...while the m=n latency is essentially beta-independent
        // (singleton clusters pay sm cost x1 only).
        let mn: Vec<f64> = matrix.iter().map(|row| row[4]).collect();
        let spread = (mn.iter().cloned().fold(0.0, f64::max)
            - mn.iter().cloned().fold(f64::INFINITY, f64::min))
            / mn[0];
        assert!(spread < 0.6, "m=n latency should barely move: {mn:?}");
    }
}
