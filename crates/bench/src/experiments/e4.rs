//! E4 — expected decision rounds of the common-coin algorithm.
//!
//! Paper §IV: "The consensus termination property is obtained in two
//! stages … The expected number of rounds for this to happen during the
//! second stage is 2." So decision rounds should concentrate on small
//! values — independent of `n` — with a geometric tail (each extra round
//! is a coin miss, probability 1/2).
//!
//! Implemented as one [`Sweep`] per system size, fanned out over worker
//! threads (the simulator is single-threaded, so the sweep parallelizes
//! across seeds for free).

use ofa_core::Algorithm;
use ofa_metrics::{fmt_f64, Histogram, Summary, Table};
use ofa_scenario::{Scenario, Sweep};
use ofa_sim::Sim;
use ofa_topology::Partition;

/// Seeds per system size.
pub const TRIALS: u64 = 40;

/// System sizes exercised.
pub const SIZES: [usize; 5] = [4, 8, 16, 32, 48];

/// Worker threads for the per-size sweeps.
const WORKERS: usize = 4;

/// Runs E4; returns the per-size mean rounds (for assertions) and the
/// table.
pub fn run(trials: u64, sizes: &[usize]) -> (Vec<f64>, Table) {
    let mut table = Table::new(
        "E4: common-coin (Alg 3) decision rounds vs n — adversarial split proposals, m=4 clusters",
        &["n", "mean", "median", "p99", "max", "P[r<=2]", "P[r<=4]"],
    );
    let mut means = Vec::new();
    for &n in sizes {
        let partition = Partition::even(n, 4.min(n));
        // Distinct seed ranges per n, so coin sequences differ across
        // system sizes too.
        let base_seed = n as u64 * 10_000;
        let report =
            Sweep::new(Scenario::new(partition, Algorithm::CommonCoin).proposals_split(n / 2))
                .seeds(base_seed..base_seed + trials)
                .workers(WORKERS)
                .run(&Sim);
        let mut rounds = Histogram::new();
        for run in &report.runs {
            assert!(
                run.outcome.all_correct_decided,
                "n={n} seed={} must decide",
                run.seed
            );
            rounds.record(run.outcome.max_decision_round);
        }
        let s = Summary::of_ints(
            rounds
                .iter()
                .flat_map(|(v, c)| std::iter::repeat_n(v, c as usize)),
        );
        means.push(s.mean);
        table.row([
            n.to_string(),
            fmt_f64(s.mean, 2),
            fmt_f64(s.median, 1),
            fmt_f64(s.p99, 0),
            fmt_f64(s.max, 0),
            fmt_f64(rounds.cdf(2), 2),
            fmt_f64(rounds.cdf(4), 2),
        ]);
    }
    (means, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_stay_small_and_size_independent() {
        let (means, t) = run(15, &[4, 8, 16]);
        assert_eq!(t.len(), 3);
        for (i, mean) in means.iter().enumerate() {
            assert!(
                *mean <= 4.0,
                "mean decision round should be ~2, got {mean} (row {i})"
            );
        }
        // No systematic growth with n: largest mean within 2 rounds of the
        // smallest.
        let lo = means.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = means.iter().cloned().fold(0.0, f64::max);
        assert!(hi - lo <= 2.0, "means = {means:?}");
    }
}
