//! SERVE — closed-loop client traffic over the replicated KV at
//! `n = 10⁴` replicas, under loss and churn.
//!
//! SMRSCALE proved the multivalued/SMR stack commits pre-seeded logs at
//! cluster scale; this experiment drives it the way a deployment would
//! be driven: **client traffic**. `2n` Poisson clients (client `c`
//! attached to replica `c mod n`) submit commands against bounded
//! proposer queues; proposers batch queued commands into log proposals
//! (fill-or-timeout up to `batch_max`), overflow arrivals are shed and
//! counted, and every committed command's submit→commit latency lands in
//! a deterministic fixed-bucket histogram — so the table reports
//! *service* metrics (offered load, commits, sheds, queue high-water
//! mark, p50/p99 latency, throughput over virtual time), not just
//! scheduler throughput.
//!
//! Every arrival is a pure PRF of `(seed, client, k)` compared against
//! the replica's virtual clock, so each cell is an ordinary declarative
//! scenario: deterministic, replayable, checkpointable — the resumable
//! variant below is what the time-budgeted CI gate runs, and the full
//! sweep pushes over 10⁶ offered commands per cell. Loss and churn are
//! swept one axis at a time against a shared lossless baseline, exactly
//! like NETSCALE, so a row's movement is attributable.

use ofa_core::{Algorithm, ArrivalProcess, TrafficSpec};
use ofa_metrics::{fmt_f64, Table};
use ofa_scenario::{Backend, ChurnPlan, CostModel, DelayModel, Engine, Scenario, VirtualTime};
use ofa_sim::Sim;
use ofa_topology::{Partition, ProcessId};
use std::path::Path;
use std::time::Instant;

/// The full sweep's system size (the paper's cluster-scale regime).
pub const FULL_N: usize = 10_000;

/// The CI smoke size: same axes, seconds per cell.
pub const QUICK_N: usize = 2_000;

/// Log slots (multivalued consensus instances) committed per cell.
pub const SLOTS: u64 = 4;

/// One sweep cell: `(loss_ppm, churn_ppm)` — baseline, 1 % message
/// loss, 1 % of replicas leaving and rejoining mid-run.
pub const CELLS: [(u32, u32); 3] = [(0, 0), (10_000, 0), (0, 10_000)];

/// The CI smoke cells (same axes; the budget, not the cell list, is
/// what shrinks in quick mode).
pub const QUICK_CELLS: [(u32, u32); 3] = CELLS;

/// One row of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct ServeRow {
    /// System size (replica count; the sweep attaches `2n` clients).
    pub n: usize,
    /// Message loss rate, ppm.
    pub loss_ppm: u32,
    /// Fraction of processes churning, ppm.
    pub churn_ppm: u32,
    /// Commands offered by clients (accepted + shed).
    pub offered: u64,
    /// Commands committed through the log.
    pub committed: u64,
    /// Commands shed at full proposer queues.
    pub shed: u64,
    /// High-water mark of any proposer queue.
    pub max_queue_depth: u64,
    /// Median submit→commit latency, virtual ticks.
    pub p50: u64,
    /// 99th-percentile submit→commit latency, virtual ticks.
    pub p99: u64,
    /// Commit throughput, commands per kilotick of virtual time.
    pub throughput: f64,
    /// Scheduler events processed.
    pub events: u64,
    /// Wall-clock seconds for the run.
    pub wall_secs: f64,
}

/// The scenario one cell runs (exposed so the CI gate and tests time
/// exactly what the table reports). Like NETSCALE's churn plan, but the
/// churned ids are offset by one: replica `p0` is the stage-1 proposer
/// whose batches win most log slots, so keeping it stable keeps the
/// committed-throughput column comparable across the churn axis.
/// Churn-planned replicas serve no clients (their batches could not be
/// re-broadcast identically by the rejoined incarnation — see
/// [`ofa_core::Env::serves_traffic`]), so the churn cell's offered load
/// drops by exactly the failed-over clients' share.
pub fn scenario(n: usize, loss_ppm: u32, churn_ppm: u32) -> Scenario {
    let m = (n / 100).max(1);
    let mut churn = ChurnPlan::new();
    let count = (n as u64 * u64::from(churn_ppm) / 1_000_000) as usize;
    if let Some(stride) = n.checked_div(count) {
        for j in 0..count {
            let leave = 1_500 + (j as u64 % 4) * 500;
            churn = churn.leave_rejoin(
                ProcessId((1 + j * stride) % n),
                VirtualTime::from_ticks(leave),
                VirtualTime::from_ticks(leave + 3_000),
            );
        }
    }
    let traffic = TrafficSpec {
        arrival: ArrivalProcess::Poisson { mean_gap: 500 },
        clients: 2 * n as u64,
        queue_cap: 256,
        batch_max: 256,
        batch_min: 0,
    };
    Scenario::new(Partition::even(n, m), Algorithm::CommonCoin)
        .replicated_log_traffic(Algorithm::CommonCoin, SLOTS, traffic)
        .seed(42)
        .delay(DelayModel::Constant(1_000))
        .loss_ppm(loss_ppm)
        .churn(churn)
        .costs(CostModel {
            send_cost: 0,
            recv_cost: 1,
            sm_op_cost: 10,
            coin_cost: 1,
        })
        .max_rounds(64)
        .max_events(u64::MAX)
        .engine(Engine::EventDriven)
}

const TITLE: &str = "SERVE: client traffic over the replicated KV — 2n Poisson clients, bounded \
                     proposer queues (cap 256), batched proposals, m=n/100 clusters, constant \
                     delay, single thread";
const COLUMNS: [&str; 13] = [
    "n",
    "loss ppm",
    "churn ppm",
    "offered",
    "committed",
    "shed",
    "max queue",
    "p50 [t]",
    "p99 [t]",
    "thr [c/kt]",
    "events",
    "wall [s]",
    "events/s",
];

/// Checks what a cell must satisfy regardless of loss/churn rates:
/// safety, liveness for the never-churned, and a live service layer.
fn assert_cell(out: &ofa_scenario::Outcome, n: usize, loss_ppm: u32, churn_ppm: u32) {
    let tag = format!("serve n={n} loss={loss_ppm} churn={churn_ppm}");
    assert!(out.agreement_holds(), "{tag}: agreement violated");
    let churned = (n as u64 * u64::from(churn_ppm) / 1_000_000) as usize;
    // Lossless cells demand liveness for every stable replica. Lossy
    // cells run four sequential retransmission-free log slots, so a
    // replica that loses a slot's closing broadcast cannot finish the
    // log — tolerate a ≤2 % straggler tail there (empirically ≲1 %).
    let stable = n - churned;
    let floor = if loss_ppm == 0 {
        stable
    } else {
        stable - stable / 50
    };
    assert!(
        out.deciders() >= floor,
        "{tag}: only {} of {} stable replicas decided (floor {})",
        out.deciders(),
        stable,
        floor
    );
    let s = &out.service;
    assert!(s.committed > 0, "{tag}: no commands committed: {s:?}");
    assert!(!s.latency.is_empty(), "{tag}: empty latency histogram");
    assert_eq!(
        s.latency.total(),
        s.committed,
        "{tag}: every commit must be measured exactly once"
    );
    if n >= FULL_N {
        assert!(
            s.submitted + s.shed >= 1_000_000,
            "{tag}: the full sweep must push >= 10^6 commands, offered {}",
            s.submitted + s.shed
        );
    }
}

fn row_from(out: &ofa_scenario::Outcome, n: usize, cell: (u32, u32), wall_secs: f64) -> ServeRow {
    let s = &out.service;
    ServeRow {
        n,
        loss_ppm: cell.0,
        churn_ppm: cell.1,
        offered: s.submitted + s.shed,
        committed: s.committed,
        shed: s.shed,
        max_queue_depth: s.max_queue_depth,
        p50: s.latency.percentile(50),
        p99: s.latency.percentile(99),
        throughput: s.throughput_per_kilotick(out.end_time.ticks()),
        events: out.events_processed,
        wall_secs,
    }
}

fn sweep_row(table: &mut Table, rows: &mut Vec<ServeRow>, row: ServeRow) {
    let events_per_sec = row.events as f64 / row.wall_secs.max(f64::EPSILON);
    table.row([
        row.n.to_string(),
        row.loss_ppm.to_string(),
        row.churn_ppm.to_string(),
        row.offered.to_string(),
        row.committed.to_string(),
        row.shed.to_string(),
        row.max_queue_depth.to_string(),
        row.p50.to_string(),
        row.p99.to_string(),
        fmt_f64(row.throughput, 2),
        row.events.to_string(),
        fmt_f64(row.wall_secs, 2),
        format!("{events_per_sec:.2e}"),
    ]);
    rows.push(row);
}

/// Runs the sweep at size `n` over `cells`; returns the rows (for
/// assertions) and the table.
///
/// # Panics
///
/// Panics if any cell violates agreement, loses a never-churned decider,
/// or fails to serve traffic (zero commits, unmeasured latencies) — the
/// rates swept here are well inside the protocol's fault budget, so
/// anything else is an engine or service-layer regression.
pub fn run(n: usize, cells: &[(u32, u32)]) -> (Vec<ServeRow>, Table) {
    let mut table = Table::new(TITLE, &COLUMNS);
    let mut rows = Vec::new();
    for &(loss_ppm, churn_ppm) in cells {
        let out = Sim.run(&scenario(n, loss_ppm, churn_ppm));
        assert_cell(&out, n, loss_ppm, churn_ppm);
        let row = row_from(&out, n, (loss_ppm, churn_ppm), out.elapsed.as_secs_f64());
        sweep_row(&mut table, &mut rows, row);
    }
    (rows, table)
}

/// Resumable variant of [`run`] for the time-budgeted CI gate — same
/// protocol as [`crate::experiments::netscale::run_resumable`]: cells
/// run as chains of checkpointed legs (the snapshots carry the in-flight
/// proposer queues, per-client arrival state, and partially-filled
/// latency histograms), finished rows persist in a done file under
/// `dir`, and an expired `deadline` returns `paused = true` with the
/// in-flight snapshot saved for the next invocation. Deterministic
/// columns of finished rows are identical to a monolithic [`run`].
///
/// # Panics
///
/// Same protocol assertions as [`run`], plus on unwritable state files.
pub fn run_resumable(
    n: usize,
    cells: &[(u32, u32)],
    dir: &Path,
    deadline: Instant,
) -> (Vec<ServeRow>, Table, bool) {
    let done_file = dir.join("serve_done.txt");
    // Lines of "loss churn offered committed shed max_queue p50 p99
    // throughput events wall_secs" for cells finished by earlier
    // invocations of this sweep.
    type Done = (u32, u32, u64, u64, u64, u64, u64, u64, f64, u64, f64);
    let mut done: Vec<Done> = std::fs::read_to_string(&done_file)
        .map(|text| {
            text.lines()
                .filter_map(|line| {
                    let mut it = line.split_whitespace();
                    Some((
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                        it.next()?.parse().ok()?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default();
    let mut table = Table::new(TITLE, &COLUMNS);
    let mut rows = Vec::new();
    let mut paused = false;
    for &(loss_ppm, churn_ppm) in cells {
        let row = if let Some(&(
            _,
            _,
            offered,
            committed,
            shed,
            max_queue_depth,
            p50,
            p99,
            throughput,
            events,
            wall_secs,
        )) = done.iter().find(|d| d.0 == loss_ppm && d.1 == churn_ppm)
        {
            ServeRow {
                n,
                loss_ppm,
                churn_ppm,
                offered,
                committed,
                shed,
                max_queue_depth,
                p50,
                p99,
                throughput,
                events,
                wall_secs,
            }
        } else {
            let cell = crate::resumable::run_cell(
                dir,
                &format!("serve_{loss_ppm}_{churn_ppm}"),
                &scenario(n, loss_ppm, churn_ppm),
                1_000,
                deadline,
            );
            let Some(out) = cell.outcome else {
                paused = true;
                break;
            };
            assert_cell(&out, n, loss_ppm, churn_ppm);
            let row = row_from(&out, n, (loss_ppm, churn_ppm), cell.wall_secs);
            done.push((
                loss_ppm,
                churn_ppm,
                row.offered,
                row.committed,
                row.shed,
                row.max_queue_depth,
                row.p50,
                row.p99,
                row.throughput,
                row.events,
                row.wall_secs,
            ));
            std::fs::create_dir_all(dir).expect("checkpoint state dir is writable");
            let text: String = done
                .iter()
                .map(|(l, c, o, k, s, q, p5, p9, t, e, w)| {
                    format!("{l} {c} {o} {k} {s} {q} {p5} {p9} {t} {e} {w}\n")
                })
                .collect();
            std::fs::write(&done_file, text).expect("done file is writable");
            row
        };
        sweep_row(&mut table, &mut rows, row);
    }
    if !paused {
        let _ = std::fs::remove_file(&done_file);
    }
    (rows, table, paused)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cells_serve_traffic_under_loss_and_churn() {
        let (rows, table) = run(400, &CELLS);
        assert_eq!(table.len(), 3);
        for row in &rows {
            assert!(row.committed > 0);
            assert!(row.offered >= row.committed + row.shed);
            assert!(row.p99 >= row.p50, "percentiles are monotone");
            assert!(row.throughput > 0.0);
            assert!(row.max_queue_depth > 0);
        }
        // Loss delays commits (retransmission-free protocol: lost stage
        // messages stretch rounds), so the loss cell must not beat the
        // baseline's virtual-time span by an order of magnitude — but the
        // real pin is determinism: rerunning a cell reproduces its row.
        let (again, _) = run(400, &[(10_000, 0)]);
        assert_eq!(again[0].offered, rows[1].offered);
        assert_eq!(again[0].committed, rows[1].committed);
        assert_eq!(again[0].p50, rows[1].p50);
        assert_eq!(again[0].p99, rows[1].p99);
        assert_eq!(again[0].events, rows[1].events);
    }

    #[test]
    fn resumable_sweep_matches_the_monolithic_rows() {
        let dir = std::env::temp_dir().join(format!("ofa-serve-resumable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cells = [(10_000u32, 0u32), (0, 10_000)];
        let (mono, _) = run(300, &cells);
        let expired = Instant::now() - std::time::Duration::from_secs(1);
        let (rows, _, paused) = run_resumable(300, &cells, &dir, expired);
        assert!(paused, "expired budget must pause");
        assert!(rows.is_empty());
        let generous = Instant::now() + std::time::Duration::from_secs(600);
        let (rows, table, paused) = run_resumable(300, &cells, &dir, generous);
        assert!(!paused);
        assert_eq!(table.len(), 2);
        for (a, b) in mono.iter().zip(rows.iter()) {
            assert_eq!(a.loss_ppm, b.loss_ppm);
            assert_eq!(a.churn_ppm, b.churn_ppm);
            assert_eq!(a.offered, b.offered);
            assert_eq!(a.committed, b.committed);
            assert_eq!(a.shed, b.shed);
            assert_eq!(a.max_queue_depth, b.max_queue_depth);
            assert_eq!(a.p50, b.p50);
            assert_eq!(a.p99, b.p99);
            assert_eq!(a.events, b.events);
        }
        assert!(!dir.join("serve_done.txt").exists(), "state cleans up");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
