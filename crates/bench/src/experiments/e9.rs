//! E9 — ablation: amplification without intra-cluster pre-agreement.
//!
//! The paper's soundness argument for "one for all" (§III-A) hinges on the
//! cluster consensus objects: *because* `CONS_x[r, ph]` makes all members
//! of `P[x]` broadcast the same value, crediting the whole cluster on one
//! message is safe (WA1 holds). This ablation keeps the amplification but
//! removes the pre-agreement — and the invariant checker duly reports WA1
//! violations, which the faithful configuration never produces. The
//! violations are real disagreement hazards: the same runs also show
//! phase-2 `rec` sets containing both values.

use ofa_core::{Algorithm, InvariantChecker, ProtocolConfig};
use ofa_metrics::Table;
use ofa_scenario::{Backend, Scenario};
use ofa_sim::Sim;
use ofa_topology::Partition;
use std::sync::Arc;

/// Seeds per configuration.
pub const TRIALS: u64 = 40;

/// Runs E9; returns `(paper violations, ablation violations)` and the
/// table.
pub fn run(trials: u64) -> ((u64, u64), Table) {
    let partition = Partition::even(6, 2);
    let mut table = Table::new(
        "E9: WA1/WA2 violations with vs without cluster pre-agreement — even(6,2), split proposals",
        &[
            "configuration",
            "runs",
            "runs w/ violations",
            "total violations",
            "agreement failures",
        ],
    );
    let mut totals = (0u64, 0u64);
    for (label, config) in [
        ("paper (pre-agree + amplify)", ProtocolConfig::paper()),
        (
            "ABLATION (amplify only)",
            ProtocolConfig::ablation_no_preagree(),
        ),
    ] {
        let mut runs_with = 0u64;
        let mut violations = 0u64;
        let mut agreement_failures = 0u64;
        for seed in 0..trials {
            let checker = Arc::new(InvariantChecker::new());
            let out = Sim.run(
                &Scenario::new(partition.clone(), Algorithm::LocalCoin)
                    .config(config.with_max_rounds(32))
                    .proposals_split(3)
                    .observer(checker.clone())
                    .seed(seed),
            );
            let v = checker.violations().len() as u64;
            if v > 0 {
                runs_with += 1;
            }
            violations += v;
            if !out.agreement_holds() {
                agreement_failures += 1;
            }
        }
        if label.starts_with("paper") {
            totals.0 = violations;
        } else {
            totals.1 = violations;
        }
        table.row([
            label.to_string(),
            trials.to_string(),
            format!("{runs_with}/{trials}"),
            violations.to_string(),
            agreement_failures.to_string(),
        ]);
    }
    (totals, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_clean_ablation_is_not() {
        let ((paper, ablation), t) = run(25);
        assert_eq!(paper, 0, "faithful algorithm must never violate WA1/WA2");
        assert!(
            ablation > 0,
            "ablation should exhibit WA1 violations (got none in 25 seeds)"
        );
        assert_eq!(t.len(), 2);
    }
}
