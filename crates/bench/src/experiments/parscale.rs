//! PARSCALE — single-threaded vs parallel engine on the SMR workload.
//!
//! `SMRSCALE` proved the full multivalued/SMR stack runs at
//! `n >= 5 000` replicas on the single-threaded event engine; this
//! experiment measures what the cluster-sharded
//! [`ofa_scenario::Engine::ParallelEvent`] engine buys on top. Every
//! cell runs the *same* replicated-KV scenario as `SMRSCALE`
//! ([`super::smrscale::scenario`]) on both engines and cross-checks the
//! outcomes bit-for-bit (decisions, counters, events, trace hash) —
//! the speedup column is only meaningful because the work is provably
//! identical.
//!
//! Cells above [`PAR_ONLY_ABOVE`] skip the single-threaded baseline (it
//! would dominate the sweep's wall-clock) and report the parallel
//! engine alone — that is the `n > 10⁴` regime this engine opens.
//!
//! Wall-clock numbers depend on the host's core count; the table
//! records the worker count actually used (from
//! [`ofa_scenario::Outcome::engine_used`]). On a host with fewer cores
//! than shards the backend's core-count guard falls back to the
//! single-threaded engine — previously that configuration ran the
//! sharded engine anyway at a measured 0.93× — and the row reports
//! `workers = 1` with a speedup of ~1, reading as what it is.

use crate::experiments::smrscale;
use ofa_metrics::{fmt_f64, Table};
use ofa_scenario::{default_workers, Backend, Engine, Outcome, Scenario};
use ofa_sim::Sim;

/// System sizes of the full sweep (replica counts). Work per cell is
/// quadratic; the largest cells are minutes per engine.
pub const SIZES: [usize; 4] = [1_000, 5_000, 10_000, 20_000];

/// Above this size only the parallel engine runs (the single-threaded
/// baseline at `n = 2·10⁴` costs more than the rest of the sweep
/// combined).
pub const PAR_ONLY_ABOVE: usize = 10_000;

/// The CI smoke size: one cell on both engines, cross-checked.
pub const QUICK_SIZES: [usize; 1] = [2_000];

/// One row of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct ParScaleRow {
    /// System size (replica count).
    pub n: usize,
    /// Worker shards the parallel engine used.
    pub workers: u64,
    /// Scheduler events processed (identical on both engines).
    pub events: u64,
    /// Single-threaded events/s (`None` above [`PAR_ONLY_ABOVE`]).
    pub st_events_per_sec: Option<f64>,
    /// Parallel events/s.
    pub par_events_per_sec: f64,
    /// `par / st` (`None` above [`PAR_ONLY_ABOVE`]).
    pub speedup: Option<f64>,
}

/// The scenario one cell runs: exactly the `SMRSCALE` workload, with
/// the engine overridden per run.
pub fn scenario(n: usize) -> Scenario {
    smrscale::scenario(n)
}

/// The worker count the sweep requests: every available core, floored
/// at 2 so the parallel path is exercised (not silently degraded to the
/// single-threaded engine) even on one-core runners.
pub fn requested_workers() -> u64 {
    default_workers().max(2) as u64
}

fn events_per_sec(out: &Outcome) -> f64 {
    out.events_processed as f64 / out.elapsed.as_secs_f64().max(f64::EPSILON)
}

/// Runs the sweep over `sizes`; returns the rows (for assertions) and
/// the table.
///
/// # Panics
///
/// Panics if a cell fails to commit, or if the two engines disagree on
/// any observable (they are asserted bit-for-bit identical, trace hash
/// included — a disagreement is an engine regression, not noise).
pub fn run(sizes: &[usize]) -> (Vec<ParScaleRow>, Table) {
    let workers = requested_workers();
    let title = format!(
        "PARSCALE: single-threaded vs parallel event engine on the SMRSCALE replicated-KV \
             workload — m=n/100 clusters, {} slots, requesting {workers} workers \
             ({} cores available)",
        smrscale::SLOTS,
        default_workers(),
    );
    let mut table = Table::new(
        &title,
        &[
            "n", "workers", "events", "st [s]", "par [s]", "st ev/s", "par ev/s", "speedup",
        ],
    );
    let mut rows = Vec::new();
    for &n in sizes {
        let par = Sim.run(&scenario(n).parallel(workers));
        let used = match par.engine_used {
            Some(Engine::ParallelEvent { workers }) => workers,
            // The core-count guard degraded the request to the
            // single-threaded engine (host has fewer cores than shards).
            Some(Engine::EventDriven) => 1,
            other => panic!("parscale n={n}: expected an event engine, used {other:?}"),
        };
        assert!(
            par.all_correct_decided && par.agreement_holds(),
            "parscale n={n}: parallel run failed to decide"
        );
        let st = (n <= PAR_ONLY_ABOVE).then(|| Sim.run(&scenario(n).event_driven()));
        if let Some(st) = &st {
            // The speedup compares *identical* work: every observable
            // must match across the engines, including the trace hash.
            assert_eq!(st.decisions, par.decisions, "parscale n={n}: decisions");
            assert_eq!(st.counters, par.counters, "parscale n={n}: counters");
            assert_eq!(st.trace_hash, par.trace_hash, "parscale n={n}: trace");
            assert_eq!(
                st.events_processed, par.events_processed,
                "parscale n={n}: events"
            );
            assert_eq!(st.end_time, par.end_time, "parscale n={n}: end time");
        }
        let par_eps = events_per_sec(&par);
        let st_eps = st.as_ref().map(events_per_sec);
        let speedup = st_eps.map(|s| par_eps / s.max(f64::EPSILON));
        rows.push(ParScaleRow {
            n,
            workers: used,
            events: par.events_processed,
            st_events_per_sec: st_eps,
            par_events_per_sec: par_eps,
            speedup,
        });
        let dash = || "—".to_string();
        table.row([
            n.to_string(),
            used.to_string(),
            par.events_processed.to_string(),
            st.as_ref()
                .map(|o| fmt_f64(o.elapsed.as_secs_f64(), 2))
                .unwrap_or_else(dash),
            fmt_f64(par.elapsed.as_secs_f64(), 2),
            st_eps.map(|e| format!("{e:.2e}")).unwrap_or_else(dash),
            format!("{par_eps:.2e}"),
            speedup.map(|s| fmt_f64(s, 2)).unwrap_or_else(dash),
        ]);
    }
    (rows, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_cells_cross_check_both_engines() {
        // Pin the core-count guard open so the parallel path runs even
        // on a single-core CI box, and stay at n >= 200 — a
        // single-cluster cell has nothing to shard and would degrade to
        // the single-threaded engine.
        ofa_sim::override_available_cores(64);
        let (rows, table) = run(&[200, 400]);
        assert_eq!(table.len(), 2);
        for r in &rows {
            assert!(r.workers >= 2, "parallel path must actually run");
            assert!(r.events > 0 && r.par_events_per_sec > 0.0);
            assert!(r.st_events_per_sec.is_some(), "baseline runs at small n");
            assert!(r.speedup.is_some());
        }
    }
}
