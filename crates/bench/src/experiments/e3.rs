//! E3 — the §III-B termination predicate, validated empirically.
//!
//! The paper's main property: the algorithms terminate iff some set of
//! clusters, each with at least one correct process, has total size
//! `> n/2`. With crashes injected *at start* (the adversary's strongest
//! move — crashed processes never send anything), the predicate is exact:
//! every predicate-true pattern must decide, every predicate-false pattern
//! must stall, and **no** pattern may decide wrongly (indulgence).

use ofa_core::Algorithm;
use ofa_metrics::Table;
use ofa_scenario::{Backend, CrashPlan, Scenario};
use ofa_sim::Sim;
use ofa_topology::{predicate, Partition, ProcessId, ProcessSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of random (partition, crash-set) trials.
pub const TRIALS: u64 = 60;

/// Round cap for expected-stall runs.
const STALL_CAP: u64 = 16;

/// Outcome counts, exposed for assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct E3Counts {
    /// Trials where the predicate held.
    pub predicate_true: u64,
    /// … of which terminated (must equal `predicate_true`).
    pub true_terminated: u64,
    /// Trials where the predicate failed.
    pub predicate_false: u64,
    /// … of which terminated (must be 0 for at-start crashes).
    pub false_terminated: u64,
    /// Agreement/validity violations anywhere (must be 0).
    pub violations: u64,
}

/// Runs E3 and returns counts plus the rendered table.
pub fn run(trials: u64) -> (E3Counts, Table) {
    let mut rng = StdRng::seed_from_u64(0xE3);
    let mut counts = E3Counts::default();
    for trial in 0..trials {
        let n = rng.gen_range(3..=9);
        let m = rng.gen_range(1..=n);
        let partition = Partition::random(n, m, &mut rng);
        // Random non-full crash set.
        let crash_count = rng.gen_range(0..n);
        let mut crashed = ProcessSet::empty(n);
        while crashed.len() < crash_count {
            crashed.insert(ProcessId(rng.gen_range(0..n)));
        }
        let holds = predicate::guarantees_termination(&partition, &crashed);
        let algorithm = if trial % 2 == 0 {
            Algorithm::LocalCoin
        } else {
            Algorithm::CommonCoin
        };
        let out = Sim.run(
            &Scenario::new(partition, algorithm)
                .proposals_split(n / 2)
                .crashes(CrashPlan::new().crash_set_at_start(&crashed))
                .max_rounds(if holds { 256 } else { STALL_CAP })
                .seed(trial),
        );
        if !out.agreement_holds() {
            counts.violations += 1;
        }
        if holds {
            counts.predicate_true += 1;
            if out.all_correct_decided {
                counts.true_terminated += 1;
            }
        } else {
            counts.predicate_false += 1;
            if out.deciders() > 0 {
                counts.false_terminated += 1;
            }
        }
    }
    let mut table = Table::new(
        "E3: termination predicate vs observed termination (random partitions & at-start crashes)",
        &["predicate", "trials", "terminated", "stalled", "violations"],
    );
    table.row([
        "holds".to_string(),
        counts.predicate_true.to_string(),
        counts.true_terminated.to_string(),
        (counts.predicate_true - counts.true_terminated).to_string(),
        counts.violations.to_string(),
    ]);
    table.row([
        "fails".to_string(),
        counts.predicate_false.to_string(),
        counts.false_terminated.to_string(),
        (counts.predicate_false - counts.false_terminated).to_string(),
        "0".to_string(),
    ]);
    (counts, table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_is_exact_for_at_start_crashes() {
        let (c, _) = run(24);
        assert_eq!(
            c.true_terminated, c.predicate_true,
            "predicate-true patterns must all terminate: {c:?}"
        );
        assert_eq!(
            c.false_terminated, 0,
            "predicate-false at-start patterns must all stall: {c:?}"
        );
        assert_eq!(c.violations, 0, "indulgence: {c:?}");
        assert!(c.predicate_true > 0 && c.predicate_false > 0, "{c:?}");
    }
}
