//! Regenerates every table of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p ofa-bench --bin experiments             # all
//! cargo run --release -p ofa-bench --bin experiments e4 e7      # subset
//! cargo run --release -p ofa-bench --bin experiments --csv e6   # CSV out
//! cargo run --release -p ofa-bench --bin experiments e1 --quick # 1 trial/cell
//! ```
//!
//! `--quick` runs each requested experiment with a single trial per
//! cell — the CI bench-smoke uses it to prove the harness end-to-end in
//! seconds.

use ofa_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let markdown = args.iter().any(|a| a == "--markdown");
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    if let Some(unknown) = args
        .iter()
        .find(|a| a.starts_with("--") && !matches!(a.as_str(), "--csv" | "--markdown" | "--quick"))
    {
        eprintln!("unknown flag: {unknown} (expected --csv, --markdown, --quick)");
        std::process::exit(2);
    }
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let tables = if ids.is_empty() {
        ofa_bench::ALL_IDS
            .iter()
            .map(|id| {
                let t = ofa_bench::run_one_scaled(id, scale)
                    .expect("built-in experiment ids are valid");
                (*id, t)
            })
            .collect()
    } else {
        let mut out = Vec::new();
        for id in ids {
            match ofa_bench::run_one_scaled(id, scale) {
                Some(t) => out.push(("", t)),
                None => {
                    eprintln!("unknown experiment id: {id} (expected e1..e10 or escale)");
                    std::process::exit(2);
                }
            }
        }
        out
    };

    for (id, table) in tables {
        if !id.is_empty() {
            println!("── {id} ──");
        }
        if csv {
            println!("{}", table.to_csv());
        } else if markdown {
            println!("{}", table.to_markdown());
        } else {
            println!("{table}");
        }
    }
}
