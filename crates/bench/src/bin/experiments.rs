//! Regenerates every table of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p ofa-bench --bin experiments                  # all
//! cargo run --release -p ofa-bench --bin experiments e4 e7           # subset
//! cargo run --release -p ofa-bench --bin experiments --csv e6        # CSV out
//! cargo run --release -p ofa-bench --bin experiments e1 --quick      # 1 trial/cell
//! cargo run --release -p ofa-bench --bin experiments smrscale --quick --out BENCH_smr.json
//! cargo run --release -p ofa-bench --bin experiments escale --quick \
//!     --budget-secs 90 --state-dir .ofa-checkpoints --out BENCH_escale.json
//! ```
//!
//! `--quick` runs each requested experiment with a single trial per
//! cell — the CI bench-smoke uses it to prove the harness end-to-end in
//! seconds. `--out <path>` additionally writes the tables as
//! machine-readable JSON (`{"experiments": [{id, title, columns, rows}]}`)
//! — the CI scale gates archive these as per-run build artifacts.
//!
//! `--budget-secs <s>` runs the ESCALE, NETSCALE, SERVE, or EXPLORE
//! sweep resumably:
//! cells execute as checkpointed legs, and when the wall-clock budget
//! expires the
//! in-flight snapshot is saved under `--state-dir` (default
//! `.ofa-checkpoints`) and the process exits with code **3**. Re-running
//! with the same state dir resumes bit-for-bit; a run that finishes the
//! whole sweep exits 0 with rows whose deterministic columns equal a
//! monolithic run's.

use ofa_bench::Scale;
use ofa_metrics::Table;

fn print_tables(tables: &[(String, Table)], banner: bool, csv: bool, markdown: bool) {
    for (id, table) in tables {
        if banner {
            println!("── {id} ──");
        }
        if csv {
            println!("{}", table.to_csv());
        } else if markdown {
            println!("{}", table.to_markdown());
        } else {
            println!("{table}");
        }
    }
}

/// Writes the `--out` JSON document. `paused` is present only for
/// resumable runs, recording whether the sweep stopped at its budget.
fn write_out(path: &str, tables: &[(String, Table)], quick: bool, paused: Option<bool>) {
    let entries: Vec<serde::Value> = tables
        .iter()
        .map(|(id, table)| {
            let mut map = match serde::Serialize::to_value(table) {
                serde::Value::Map(m) => m,
                other => unreachable!("tables serialize as maps, got {other:?}"),
            };
            map.insert(0, ("id".to_string(), serde::Value::Str(id.clone())));
            serde::Value::Map(map)
        })
        .collect();
    let mut doc = vec![
        ("quick".to_string(), serde::Value::Bool(quick)),
        ("experiments".to_string(), serde::Value::Seq(entries)),
    ];
    if let Some(paused) = paused {
        doc.insert(1, ("paused".to_string(), serde::Value::Bool(paused)));
    }
    let json = serde_json::to_string(&serde::Value::Map(doc))
        .expect("tables contain no non-finite floats");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("failed to write {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let markdown = args.iter().any(|a| a == "--markdown");
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let mut out_path: Option<String> = None;
    let mut budget_secs: Option<u64> = None;
    let mut state_dir: String = ".ofa-checkpoints".to_string();
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--csv" | "--markdown" | "--quick" => {}
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => out_path = Some(path.clone()),
                    None => {
                        eprintln!("--out requires a file path");
                        std::process::exit(2);
                    }
                }
            }
            "--budget-secs" => {
                i += 1;
                match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(secs) => budget_secs = Some(secs),
                    None => {
                        eprintln!("--budget-secs requires a number of seconds");
                        std::process::exit(2);
                    }
                }
            }
            "--state-dir" => {
                i += 1;
                match args.get(i) {
                    Some(dir) => state_dir = dir.clone(),
                    None => {
                        eprintln!("--state-dir requires a directory path");
                        std::process::exit(2);
                    }
                }
            }
            flag if flag.starts_with("--") => {
                eprintln!(
                    "unknown flag: {flag} (expected --csv, --markdown, --quick, --out, \
                     --budget-secs, --state-dir)"
                );
                std::process::exit(2);
            }
            id => ids.push(id.to_string()),
        }
        i += 1;
    }

    if let Some(secs) = budget_secs {
        // Only the ESCALE, NETSCALE, SERVE, and EXPLORE sweeps run
        // resumably today: SMRSCALE (and PARSCALE's baseline comparison)
        // verify their logs through a run observer, which checkpointing
        // deliberately refuses to capture. SERVE's service metrics ride
        // the snapshot itself (in-flight queues, latency histograms), so
        // it needs no observer; EXPLORE checkpoints its own search state
        // at generation boundaries.
        let id = ids.first().map(|s| s.to_ascii_lowercase());
        if ids.len() != 1
            || !matches!(
                id.as_deref(),
                Some("escale" | "netscale" | "serve" | "explore")
            )
        {
            eprintln!(
                "--budget-secs currently supports exactly one experiment: escale, netscale, \
                 serve, or explore"
            );
            std::process::exit(2);
        }
        let dir = std::path::PathBuf::from(&state_dir);
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(secs);
        let (id, table, paused) = match id.as_deref() {
            Some("escale") => {
                use ofa_bench::experiments::escale;
                let sizes: &[usize] = match scale {
                    Scale::Full => &escale::SIZES,
                    Scale::Quick => &escale::QUICK_SIZES,
                };
                let (_rows, table, paused) = escale::run_resumable(sizes, &dir, deadline);
                ("ESCALE", table, paused)
            }
            Some("netscale") => {
                use ofa_bench::experiments::netscale;
                let (n, cells): (usize, &[(u32, u32)]) = match scale {
                    Scale::Full => (netscale::FULL_N, &netscale::CELLS),
                    Scale::Quick => (netscale::QUICK_N, &netscale::QUICK_CELLS),
                };
                let (_rows, table, paused) = netscale::run_resumable(n, cells, &dir, deadline);
                ("NETSCALE", table, paused)
            }
            Some("serve") => {
                use ofa_bench::experiments::serve;
                let (n, cells): (usize, &[(u32, u32)]) = match scale {
                    Scale::Full => (serve::FULL_N, &serve::CELLS),
                    Scale::Quick => (serve::QUICK_N, &serve::QUICK_CELLS),
                };
                let (_rows, table, paused) = serve::run_resumable(n, cells, &dir, deadline);
                ("SERVE", table, paused)
            }
            _ => {
                use ofa_bench::experiments::explore;
                let params = match scale {
                    Scale::Full => &explore::FULL,
                    Scale::Quick => &explore::QUICK,
                };
                let (_rows, table, paused) = explore::run_resumable(params, &dir, deadline);
                ("EXPLORE", table, paused)
            }
        };
        let tables = vec![(id.to_string(), table)];
        print_tables(&tables, false, csv, markdown);
        if let Some(path) = &out_path {
            write_out(path, &tables, scale == Scale::Quick, Some(paused));
        }
        if paused {
            eprintln!(
                "budget of {secs}s expired; checkpoint state saved under {}",
                dir.display()
            );
            std::process::exit(3);
        }
        return;
    }

    let tables: Vec<(String, Table)> = if ids.is_empty() {
        ofa_bench::ALL_IDS
            .iter()
            .map(|id| {
                let t = ofa_bench::run_one_scaled(id, scale)
                    .expect("built-in experiment ids are valid");
                (id.to_string(), t)
            })
            .collect()
    } else {
        let mut out = Vec::new();
        for id in &ids {
            match ofa_bench::run_one_scaled(id, scale) {
                Some(t) => out.push((id.to_ascii_uppercase(), t)),
                None => {
                    eprintln!(
                        "unknown experiment id: {id} \
                         (expected e1..e10, escale, smrscale, parscale, netscale, serve, \
                         or explore)"
                    );
                    std::process::exit(2);
                }
            }
        }
        out
    };

    print_tables(&tables, ids.is_empty(), csv, markdown);

    if let Some(path) = out_path {
        write_out(&path, &tables, scale == Scale::Quick, None);
    }
}
