//! Regenerates every table of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p ofa-bench --bin experiments                  # all
//! cargo run --release -p ofa-bench --bin experiments e4 e7           # subset
//! cargo run --release -p ofa-bench --bin experiments --csv e6        # CSV out
//! cargo run --release -p ofa-bench --bin experiments e1 --quick      # 1 trial/cell
//! cargo run --release -p ofa-bench --bin experiments smrscale --quick --out BENCH_smr.json
//! ```
//!
//! `--quick` runs each requested experiment with a single trial per
//! cell — the CI bench-smoke uses it to prove the harness end-to-end in
//! seconds. `--out <path>` additionally writes the tables as
//! machine-readable JSON (`{"experiments": [{id, title, columns, rows}]}`)
//! — the CI scale gates archive these as per-run build artifacts.

use ofa_bench::Scale;
use ofa_metrics::Table;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let markdown = args.iter().any(|a| a == "--markdown");
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let mut out_path: Option<String> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--csv" | "--markdown" | "--quick" => {}
            "--out" => {
                i += 1;
                match args.get(i) {
                    Some(path) => out_path = Some(path.clone()),
                    None => {
                        eprintln!("--out requires a file path");
                        std::process::exit(2);
                    }
                }
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag: {flag} (expected --csv, --markdown, --quick, --out)");
                std::process::exit(2);
            }
            id => ids.push(id.to_string()),
        }
        i += 1;
    }

    let tables: Vec<(String, Table)> = if ids.is_empty() {
        ofa_bench::ALL_IDS
            .iter()
            .map(|id| {
                let t = ofa_bench::run_one_scaled(id, scale)
                    .expect("built-in experiment ids are valid");
                (id.to_string(), t)
            })
            .collect()
    } else {
        let mut out = Vec::new();
        for id in &ids {
            match ofa_bench::run_one_scaled(id, scale) {
                Some(t) => out.push((id.to_ascii_uppercase(), t)),
                None => {
                    eprintln!(
                        "unknown experiment id: {id} \
                         (expected e1..e10, escale, smrscale, or parscale)"
                    );
                    std::process::exit(2);
                }
            }
        }
        out
    };

    for (id, table) in &tables {
        if ids.is_empty() {
            println!("── {id} ──");
        }
        if csv {
            println!("{}", table.to_csv());
        } else if markdown {
            println!("{}", table.to_markdown());
        } else {
            println!("{table}");
        }
    }

    if let Some(path) = out_path {
        let entries: Vec<serde::Value> = tables
            .iter()
            .map(|(id, table)| {
                let mut map = match serde::Serialize::to_value(table) {
                    serde::Value::Map(m) => m,
                    other => unreachable!("tables serialize as maps, got {other:?}"),
                };
                map.insert(0, ("id".to_string(), serde::Value::Str(id.clone())));
                serde::Value::Map(map)
            })
            .collect();
        let doc = serde::Value::Map(vec![
            (
                "quick".to_string(),
                serde::Value::Bool(scale == Scale::Quick),
            ),
            ("experiments".to_string(), serde::Value::Seq(entries)),
        ]);
        let json = serde_json::to_string(&doc).expect("tables contain no non-finite floats");
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
