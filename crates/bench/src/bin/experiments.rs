//! Regenerates every table of EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p ofa-bench --bin experiments            # all
//! cargo run --release -p ofa-bench --bin experiments e4 e7     # subset
//! cargo run --release -p ofa-bench --bin experiments --csv e6  # CSV out
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let csv = args.iter().any(|a| a == "--csv");
    let markdown = args.iter().any(|a| a == "--markdown");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let tables = if ids.is_empty() {
        ofa_bench::run_all()
    } else {
        let mut out = Vec::new();
        for id in ids {
            match ofa_bench::run_one(id) {
                Some(t) => out.push(("", t)),
                None => {
                    eprintln!("unknown experiment id: {id} (expected e1..e10)");
                    std::process::exit(2);
                }
            }
        }
        out
    };

    for (id, table) in tables {
        if !id.is_empty() {
            println!("── {id} ──");
        }
        if csv {
            println!("{}", table.to_csv());
        } else if markdown {
            println!("{}", table.to_markdown());
        } else {
            println!("{table}");
        }
    }
}
