//! Wall-clock-budgeted, resumable experiment cells.
//!
//! A CI scale gate has a time budget per run, but the interesting cells
//! keep growing. Instead of shrinking the workload to fit the budget,
//! a gate can run a cell as a chain of checkpointed *legs*: when the
//! budget expires mid-cell, the in-flight [`Snapshot`] is written to a
//! state directory (which CI carries to the next scheduled run as an
//! artifact/cache), and the next invocation resumes it bit-for-bit —
//! the finished cell's deterministic columns (events, virtual end,
//! trace hash) are identical to a monolithic run's, with only the
//! wall-clock column accumulated across legs.

use ofa_scenario::{Outcome, Scenario, Snapshot, VirtualTime};
use ofa_sim::{RunOutcome, Sim};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// The result of driving one cell against a deadline.
pub struct CellResult {
    /// The finished outcome, or `None` if the deadline expired and the
    /// cell's checkpoint was saved instead.
    pub outcome: Option<Outcome>,
    /// Wall-clock seconds spent on this cell so far, *accumulated
    /// across legs* (prior invocations' time is carried in the state
    /// directory alongside the snapshot).
    pub wall_secs: f64,
}

fn snap_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{key}.snap.json"))
}

fn wall_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{key}.wall"))
}

/// Runs one cell in legs of virtual time until it finishes or
/// `deadline` passes. The first leg spans `leg_ticks`; each subsequent
/// leg doubles. A checkpoint costs O(total machine state) to build and
/// restore — for a consensus machine that is O(n) per process, O(n²)
/// per snapshot — so fixed-length legs would spend far more wall clock
/// pausing than simulating; doubling keeps the pause count logarithmic
/// in the run's virtual length while staying responsive to short
/// budgets early on. The doubling carries *across invocations*: a
/// resumed cell starts its first leg at the virtual time already
/// covered (not back at `leg_ticks`), so the total pause count stays
/// logarithmic in the cell's length rather than logarithmic *per leg* —
/// re-paying the early small spans on every CI run would make the
/// snapshot cycle, not the simulation, the dominant cost at SMR scale.
/// State (snapshot + accumulated wall clock) lives under `dir`, keyed
/// by `key`; a finished cell removes its state files so a later sweep
/// starts fresh.
pub fn run_cell(
    dir: &Path,
    key: &str,
    scenario: &Scenario,
    leg_ticks: u64,
    deadline: Instant,
) -> CellResult {
    assert!(leg_ticks > 0, "legs must advance virtual time");
    let snap_file = snap_path(dir, key);
    let wall_file = wall_path(dir, key);
    let prior_wall: f64 = std::fs::read_to_string(&wall_file)
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0.0);
    let started = Instant::now();
    let mut span = leg_ticks;
    let mut pending = match std::fs::read_to_string(&snap_file) {
        Ok(text) => {
            let snap: Snapshot = serde_json::from_str(&text).expect("checkpoint artifact decodes");
            span = span.max(snap.at.ticks());
            let cut = snap.at.ticks().saturating_add(span);
            Sim.resume_until(&snap, VirtualTime::from_ticks(cut))
        }
        Err(_) => Sim.run_until(scenario, VirtualTime::from_ticks(span)),
    };
    loop {
        match pending {
            RunOutcome::Done(out) => {
                let _ = std::fs::remove_file(&snap_file);
                let _ = std::fs::remove_file(&wall_file);
                return CellResult {
                    outcome: Some(out),
                    wall_secs: prior_wall + started.elapsed().as_secs_f64(),
                };
            }
            RunOutcome::Paused(snap) => {
                let spent = prior_wall + started.elapsed().as_secs_f64();
                if Instant::now() >= deadline {
                    std::fs::create_dir_all(dir).expect("checkpoint state dir is writable");
                    let json = serde_json::to_string(&*snap).expect("snapshot serializes");
                    std::fs::write(&snap_file, json).expect("snapshot file is writable");
                    std::fs::write(&wall_file, format!("{spent}")).expect("wall file is writable");
                    return CellResult {
                        outcome: None,
                        wall_secs: spent,
                    };
                }
                span = span.saturating_mul(2);
                let cut = snap.at.ticks().saturating_add(span);
                pending = Sim.resume_until(&snap, VirtualTime::from_ticks(cut));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::escale;
    use ofa_scenario::Backend;
    use std::time::Duration;

    #[test]
    fn a_cell_split_across_invocations_matches_a_monolithic_run() {
        let dir = std::env::temp_dir().join(format!("ofa-resumable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let scenario = escale::scenario(200);
        let straight = Sim.run(&scenario);

        // A deadline already in the past: the first leg runs, then the
        // cell pauses and saves — simulating a budget-expired CI run.
        let past = Instant::now() - Duration::from_secs(1);
        let first = run_cell(&dir, "cell", &scenario, 1_000, past);
        assert!(first.outcome.is_none(), "past deadline must pause");
        assert!(snap_path(&dir, "cell").exists());

        // The "next scheduled run": a generous deadline finishes it.
        let later = Instant::now() + Duration::from_secs(600);
        let second = run_cell(&dir, "cell", &scenario, 1_000, later);
        let out = second.outcome.expect("second invocation finishes");
        assert_eq!(straight.trace_hash, out.trace_hash);
        assert_eq!(straight.events_processed, out.events_processed);
        assert_eq!(straight.end_time, out.end_time);
        assert_eq!(straight.decisions, out.decisions);
        assert!(
            second.wall_secs >= first.wall_secs,
            "wall clock accumulates across legs"
        );
        assert!(!snap_path(&dir, "cell").exists(), "finished cells clean up");
        assert!(!wall_path(&dir, "cell").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
