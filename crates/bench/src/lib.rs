//! # `ofa-bench` — the experiment harness
//!
//! One module per experiment of the reproduction plan (see DESIGN.md §6);
//! each exposes a `run(..)` function returning an [`ofa_metrics::Table`]
//! (plus typed values where tests assert on them). The `experiments`
//! binary prints every table; the Criterion benches in `benches/` time
//! them; EXPERIMENTS.md records the paper-vs-measured comparison.
//!
//! | id | claim |
//! |----|-------|
//! | E1 | Figure 1 decompositions run both algorithms to agreement |
//! | E2 | one-for-all: 6-of-7 crashes survived with a majority cluster |
//! | E3 | §III-B termination predicate is empirically exact |
//! | E4 | common-coin decision rounds ≈ 2, independent of n |
//! | E5 | clustering collapses local-coin round counts |
//! | E6 | §III-C hybrid-vs-m&m structural comparison |
//! | E7 | efficiency/scalability tradeoff (sm cost vs net delay) |
//! | E8 | fault-tolerance frontier beats the `⌊(n-1)/2⌋` MP bound |
//! | E9 | ablation: amplification needs cluster pre-agreement |
//! | E10 | Figure 2 m&m domains recomputed verbatim |

#![warn(missing_docs)]

/// The experiment modules, E1 through E10.
pub mod experiments {
    pub mod e1;
    pub mod e10;
    pub mod e2;
    pub mod e3;
    pub mod e4;
    pub mod e5;
    pub mod e6;
    pub mod e7;
    pub mod e8;
    pub mod e9;
}

use ofa_metrics::Table;

/// Runs every experiment at its default scale, returning `(id, table)`
/// pairs in order.
pub fn run_all() -> Vec<(&'static str, Table)> {
    use experiments::*;
    vec![
        ("E1", e1::run(e1::TRIALS)),
        ("E2", e2::run(e2::TRIALS)),
        ("E3", e3::run(e3::TRIALS).1),
        ("E4", e4::run(e4::TRIALS, &e4::SIZES).1),
        ("E5", e5::run(e5::TRIALS, &e5::SIZES).2),
        ("E6", e6::run()),
        ("E7", e7::run(e7::TRIALS).1),
        ("E8", e8::run().1),
        ("E9", e9::run(e9::TRIALS).1),
        ("E10", e10::run().1),
    ]
}

/// Runs one experiment by id (case-insensitive), at default scale.
pub fn run_one(id: &str) -> Option<Table> {
    use experiments::*;
    Some(match id.to_ascii_lowercase().as_str() {
        "e1" => e1::run(e1::TRIALS),
        "e2" => e2::run(e2::TRIALS),
        "e3" => e3::run(e3::TRIALS).1,
        "e4" => e4::run(e4::TRIALS, &e4::SIZES).1,
        "e5" => e5::run(e5::TRIALS, &e5::SIZES).2,
        "e6" => e6::run(),
        "e7" => e7::run(e7::TRIALS).1,
        "e8" => e8::run().1,
        "e9" => e9::run(e9::TRIALS).1,
        "e10" => e10::run().1,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_rejects_unknown_ids() {
        assert!(run_one("e99").is_none());
        assert!(run_one("E10").is_some());
    }
}
