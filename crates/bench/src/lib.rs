//! # `ofa-bench` — the experiment harness
//!
//! One module per experiment of the reproduction plan (see DESIGN.md §6);
//! each exposes a `run(..)` function returning an [`ofa_metrics::Table`]
//! (plus typed values where tests assert on them). The `experiments`
//! binary prints every table; the Criterion benches in `benches/` time
//! them; EXPERIMENTS.md records the paper-vs-measured comparison.
//!
//! | id | claim |
//! |----|-------|
//! | E1 | Figure 1 decompositions run both algorithms to agreement |
//! | E2 | one-for-all: 6-of-7 crashes survived with a majority cluster |
//! | E3 | §III-B termination predicate is empirically exact |
//! | E4 | common-coin decision rounds ≈ 2, independent of n |
//! | E5 | clustering collapses local-coin round counts |
//! | E6 | §III-C hybrid-vs-m&m structural comparison |
//! | E7 | efficiency/scalability tradeoff (sm cost vs net delay) |
//! | E8 | fault-tolerance frontier beats the `⌊(n-1)/2⌋` MP bound |
//! | E9 | ablation: amplification needs cluster pre-agreement |
//! | E10 | Figure 2 m&m domains recomputed verbatim |
//! | ESCALE | event-driven engine runs full consensus at `n = 10⁴–5·10⁴` in seconds–minutes |
//! | SMRSCALE | replicated KV (multivalued/SMR stack) commits logs at `n >= 5 000` replicas |
//! | PARSCALE | cluster-sharded parallel engine vs single-threaded: identical runs, measured speedup |
//! | NETSCALE | consensus at `n = 10⁴` under message loss and churn: rounds and decision latency vs rate |
//! | SERVE | client traffic over the replicated KV at `n = 10⁴`: throughput, p50/p99 latency, sheds vs loss/churn |
//! | EXPLORE | adversarial schedule search at `n = 10³`: fixed-seed guided mutation, deterministic trajectory, no safety violation found |

#![warn(missing_docs)]

/// The experiment modules, E1 through E10 plus the ESCALE / SMRSCALE /
/// PARSCALE / NETSCALE / SERVE engine sweeps and the EXPLORE
/// adversarial-search workload.
pub mod experiments {
    pub mod e1;
    pub mod e10;
    pub mod e2;
    pub mod e3;
    pub mod e4;
    pub mod e5;
    pub mod e6;
    pub mod e7;
    pub mod e8;
    pub mod e9;
    pub mod escale;
    pub mod explore;
    pub mod netscale;
    pub mod parscale;
    pub mod serve;
    pub mod smrscale;
}

pub mod resumable;

use ofa_metrics::Table;

/// Every experiment id, in presentation order. The single source of
/// truth for "all experiments" — `run_all`, the `experiments` binary's
/// `--quick` path, and CI smoke loops all iterate this.
pub const ALL_IDS: [&str; 16] = [
    "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "ESCALE", "SMRSCALE", "PARSCALE",
    "NETSCALE", "SERVE", "EXPLORE",
];

/// Runs every experiment at its default scale, returning `(id, table)`
/// pairs in order.
pub fn run_all() -> Vec<(&'static str, Table)> {
    ALL_IDS
        .iter()
        .map(|id| {
            let t = run_one_scaled(id, Scale::Full).expect("ALL_IDS entries are valid");
            (*id, t)
        })
        .collect()
}

/// Runs one experiment by id (case-insensitive), at default scale.
pub fn run_one(id: &str) -> Option<Table> {
    run_one_scaled(id, Scale::Full)
}

/// How much work [`run_one_scaled`] does per experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The default trial counts used for EXPERIMENTS.md tables.
    Full,
    /// A single trial per cell — seconds, not minutes; used by the CI
    /// bench-smoke job (`experiments <id> --quick`) to prove the harness
    /// end-to-end without paying for statistical quality.
    Quick,
}

/// Runs one experiment by id (case-insensitive) at the given [`Scale`].
pub fn run_one_scaled(id: &str, scale: Scale) -> Option<Table> {
    use experiments::*;
    let t = |full: u64| match scale {
        Scale::Full => full,
        Scale::Quick => 1,
    };
    Some(match id.to_ascii_lowercase().as_str() {
        "e1" => e1::run(t(e1::TRIALS)),
        "e2" => e2::run(t(e2::TRIALS)),
        "e3" => e3::run(t(e3::TRIALS)).1,
        "e4" => e4::run(t(e4::TRIALS), &e4::SIZES).1,
        "e5" => e5::run(t(e5::TRIALS), &e5::SIZES).2,
        "e6" => e6::run(),
        "e7" => e7::run(t(e7::TRIALS)).1,
        "e8" => e8::run().1,
        "e9" => e9::run(t(e9::TRIALS)).1,
        "e10" => e10::run().1,
        // Scaled by system size rather than trial count: the full sweeps
        // reach n = 50 000 / 10 000 (minutes); quick is one n = 5 000
        // cell each.
        "escale" => match scale {
            Scale::Full => escale::run(&escale::SIZES).1,
            Scale::Quick => escale::run(&escale::QUICK_SIZES).1,
        },
        "smrscale" => match scale {
            Scale::Full => smrscale::run(&smrscale::SIZES).1,
            Scale::Quick => smrscale::run(&smrscale::QUICK_SIZES).1,
        },
        "parscale" => match scale {
            Scale::Full => parscale::run(&parscale::SIZES).1,
            Scale::Quick => parscale::run(&parscale::QUICK_SIZES).1,
        },
        "netscale" => match scale {
            Scale::Full => netscale::run(netscale::FULL_N, &netscale::CELLS).1,
            Scale::Quick => netscale::run(netscale::QUICK_N, &netscale::QUICK_CELLS).1,
        },
        "serve" => match scale {
            Scale::Full => serve::run(serve::FULL_N, &serve::CELLS).1,
            Scale::Quick => serve::run(serve::QUICK_N, &serve::QUICK_CELLS).1,
        },
        "explore" => match scale {
            Scale::Full => explore::run(&explore::FULL).1,
            Scale::Quick => explore::run(&explore::QUICK).1,
        },
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_one_rejects_unknown_ids() {
        assert!(run_one("e99").is_none());
        assert!(run_one("E10").is_some());
    }
}
