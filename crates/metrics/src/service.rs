//! Service-level metrics for client traffic: per-command submit→commit
//! latency in a deterministic fixed-bucket histogram, plus the
//! throughput/backpressure gauges surfaced through
//! `ofa_scenario::Outcome`.
//!
//! Everything here is integer-only on the hot path: recording a latency
//! is a handful of shifts, and percentiles are exact bucket upper bounds
//! — so the numbers are bit-for-bit identical across engines, worker
//! counts, and checkpoint/resume hops, and safe to assert on in the
//! equivalence corpus.

use serde::{Deserialize, Serialize};

/// Values below this record exactly (bucket index == value).
const EXACT: u64 = 32;
/// Sub-buckets per power of two above the exact range.
const SUBS: u64 = 16;
/// Bucket count: 32 exact + 16 sub-buckets for each exponent 5..=63.
const BUCKETS: usize = (EXACT + (64 - 6) * SUBS + SUBS) as usize;

/// A deterministic fixed-bucket latency histogram.
///
/// Values `< 32` land in exact unit buckets; larger values use a
/// log-linear scheme (16 sub-buckets per power of two), bounding the
/// relative quantile error at `2⁻⁴` while keeping `record` float-free.
/// Buckets grow on demand, so an idle process costs no memory.
///
/// # Examples
///
/// ```
/// use ofa_metrics::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new();
/// for v in [1u64, 2, 2, 3, 30] {
///     h.record(v);
/// }
/// assert_eq!(h.total(), 5);
/// assert_eq!(h.percentile(50), 2); // exact below 32
/// assert_eq!(h.percentile(100), 30);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    /// Dense counts, truncated at the highest occupied bucket.
    buckets: Vec<u64>,
    /// Total recorded samples.
    total: u64,
}

/// Bucket index for a value: identity below [`EXACT`], log-linear above.
fn bucket_index(v: u64) -> usize {
    if v < EXACT {
        return v as usize;
    }
    let e = 63 - v.leading_zeros() as u64; // 5..=63
    let mantissa = (v >> (e - 4)) & (SUBS - 1);
    (EXACT + (e - 5) * SUBS + mantissa) as usize
}

/// Inclusive upper bound of a bucket (saturating at `u64::MAX`).
fn bucket_bound(index: usize) -> u64 {
    let index = index as u64;
    if index < EXACT {
        return index;
    }
    let i = index - EXACT;
    let e = 5 + i / SUBS;
    let m = i % SUBS;
    let lo = 1u128 << e;
    let width = 1u128 << (e - 4);
    let bound = lo + (m as u128 + 1) * width - 1;
    u64::try_from(bound).unwrap_or(u64::MAX)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one sample. Integer-only: a comparison, a `leading_zeros`,
    /// two shifts, and an increment.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if self.buckets.len() <= idx {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.total += 1;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `true` iff nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The `p`-th percentile (0..=100) as the inclusive upper bound of
    /// the first bucket whose cumulative count reaches rank
    /// `max(1, ceil(total · p / 100))`. Exact for values `< 32`; within
    /// `2⁻⁴` relative error above. Returns 0 on an empty histogram.
    pub fn percentile(&self, p: u32) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((self.total as u128 * p as u128).div_ceil(100)).max(1);
        let mut cum: u128 = 0;
        for (idx, &count) in self.buckets.iter().enumerate() {
            cum += count as u128;
            if cum >= rank {
                return bucket_bound(idx);
            }
        }
        bucket_bound(self.buckets.len().saturating_sub(1))
    }

    /// Folds `other` into `self` (elementwise add). Associative and
    /// commutative, so per-shard histograms merge to the same result in
    /// any order — the property the parallel engine relies on.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
        self.total += other.total;
    }

    /// Occupied `(bucket upper bound, count)` pairs in ascending order.
    pub fn nonzero(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_bound(i), c))
    }
}

/// Trailing-zero-insensitive equality: `[1, 0]` equals `[1]`.
impl PartialEq for LatencyHistogram {
    fn eq(&self, other: &Self) -> bool {
        if self.total != other.total {
            return false;
        }
        let (long, short) = if self.buckets.len() >= other.buckets.len() {
            (&self.buckets, &other.buckets)
        } else {
            (&other.buckets, &self.buckets)
        };
        long.iter()
            .zip(short.iter().chain(std::iter::repeat(&0)))
            .all(|(a, b)| a == b)
    }
}

impl Eq for LatencyHistogram {}

/// Serializes as sparse `(index, count)` pairs plus the total, so huge
/// empty ranges cost nothing in a checkpoint.
impl Serialize for LatencyHistogram {
    fn to_value(&self) -> serde::Value {
        let pairs: Vec<(u64, u64)> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i as u64, c))
            .collect();
        serde::Value::Map(vec![
            ("total".to_string(), self.total.to_value()),
            ("buckets".to_string(), pairs.to_value()),
        ])
    }
}

impl Deserialize for LatencyHistogram {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let total = Deserialize::from_value(
            v.get("total")
                .ok_or_else(|| serde::Error::msg("LatencyHistogram: missing total"))?,
        )?;
        let pairs: Vec<(u64, u64)> = Deserialize::from_value(
            v.get("buckets")
                .ok_or_else(|| serde::Error::msg("LatencyHistogram: missing buckets"))?,
        )?;
        let mut h = LatencyHistogram {
            buckets: Vec::new(),
            total,
        };
        for (idx, count) in pairs {
            let idx = idx as usize;
            if idx >= BUCKETS {
                return Err(serde::Error::msg("LatencyHistogram: bucket out of range"));
            }
            if h.buckets.len() <= idx {
                h.buckets.resize(idx + 1, 0);
            }
            h.buckets[idx] = count;
        }
        Ok(h)
    }
}

/// Per-run client-service statistics: what a replica's traffic state
/// accumulated between the first arrival and the last commit.
///
/// Merging is commutative and associative on every field (sums and
/// maxima), so per-process stats fold to the same global value whatever
/// the engine or worker count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Commands accepted into a proposer queue.
    pub submitted: u64,
    /// Commands committed (popped from the proposing replica's queue).
    pub committed: u64,
    /// Commands shed because the bounded queue was full at arrival.
    pub shed: u64,
    /// Non-empty batches committed.
    pub batches: u64,
    /// High-water mark of the proposer queue depth.
    pub max_queue_depth: u64,
    /// Virtual time of the last commit (0 if nothing committed).
    pub last_commit_at: u64,
    /// Submit→commit latency of every committed command, in ticks.
    pub latency: LatencyHistogram,
}

impl ServiceStats {
    /// Fresh all-zero stats.
    pub fn new() -> Self {
        ServiceStats::default()
    }

    /// `true` iff no field ever moved — the "no traffic ran" marker.
    pub fn is_empty(&self) -> bool {
        self.submitted == 0
            && self.committed == 0
            && self.shed == 0
            && self.batches == 0
            && self.max_queue_depth == 0
            && self.last_commit_at == 0
            && self.latency.is_empty()
    }

    /// Folds `other` into `self`: counters add, gauges take the maximum,
    /// histograms merge elementwise.
    pub fn merge(&mut self, other: &ServiceStats) {
        self.submitted += other.submitted;
        self.committed += other.committed;
        self.shed += other.shed;
        self.batches += other.batches;
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        self.last_commit_at = self.last_commit_at.max(other.last_commit_at);
        self.latency.merge(&other.latency);
    }

    /// Commit throughput in commands per 1 000 ticks of virtual time
    /// (report-time only; the hot path never divides).
    pub fn throughput_per_kilotick(&self, end_time: u64) -> f64 {
        if end_time == 0 {
            return 0.0;
        }
        self.committed as f64 * 1_000.0 / end_time as f64
    }
}

impl Serialize for ServiceStats {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("submitted".to_string(), self.submitted.to_value()),
            ("committed".to_string(), self.committed.to_value()),
            ("shed".to_string(), self.shed.to_value()),
            ("batches".to_string(), self.batches.to_value()),
            (
                "max_queue_depth".to_string(),
                self.max_queue_depth.to_value(),
            ),
            ("last_commit_at".to_string(), self.last_commit_at.to_value()),
            ("latency".to_string(), self.latency.to_value()),
        ])
    }
}

impl Deserialize for ServiceStats {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::msg(format!("ServiceStats: missing field {name:?}")))
        };
        Ok(ServiceStats {
            submitted: Deserialize::from_value(field("submitted")?)?,
            committed: Deserialize::from_value(field("committed")?)?,
            shed: Deserialize::from_value(field("shed")?)?,
            batches: Deserialize::from_value(field("batches")?)?,
            max_queue_depth: Deserialize::from_value(field("max_queue_depth")?)?,
            last_commit_at: Deserialize::from_value(field("last_commit_at")?)?,
            latency: Deserialize::from_value(field("latency")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_buckets_below_32() {
        for v in 0..32 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_are_log_linear() {
        // 32..64 split into 16 sub-buckets of width 2.
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(33), 32);
        assert_eq!(bucket_index(34), 33);
        assert_eq!(bucket_bound(32), 33);
        assert_eq!(bucket_bound(33), 35);
        // 64..128: width 4.
        assert_eq!(bucket_index(64), 48);
        assert_eq!(bucket_index(67), 48);
        assert_eq!(bucket_index(68), 49);
        assert_eq!(bucket_bound(48), 67);
        // Monotone and consistent: every value falls inside its bucket.
        for v in [
            31u64,
            32,
            63,
            64,
            100,
            1_000,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            assert!(bucket_bound(idx) >= v, "bound({idx}) >= {v}");
            if idx > 0 {
                assert!(bucket_bound(idx - 1) < v, "prev bound < {v}");
            }
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn exact_percentiles_on_known_distribution() {
        // 100 samples of value k for k in 1..=10 (all < 32 → exact).
        let mut h = LatencyHistogram::new();
        for k in 1u64..=10 {
            for _ in 0..10 {
                h.record(k);
            }
        }
        assert_eq!(h.total(), 100);
        assert_eq!(h.percentile(50), 5);
        assert_eq!(h.percentile(90), 9);
        assert_eq!(h.percentile(99), 10);
        assert_eq!(h.percentile(100), 10);
        assert_eq!(h.percentile(0), 1, "p0 is the minimum");
        // A one-sample histogram answers that sample everywhere.
        let mut one = LatencyHistogram::new();
        one.record(7);
        for p in [0, 1, 50, 99, 100] {
            assert_eq!(one.percentile(p), 7);
        }
    }

    #[test]
    fn relative_error_is_bounded_above_32() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_000);
        let p = h.percentile(50);
        assert!(p >= 1_000_000);
        // 2⁻⁴ relative error bound.
        assert!(p - 1_000_000 <= 1_000_000 / 16);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = mk(&[1, 5, 900, 70_000]);
        let b = mk(&[2, 2, 5]);
        let c = mk(&[1 << 30, 31]);
        // (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        // a ⊔ b == b ⊔ a
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // Merging shard partials equals the single-threaded result.
        let whole = mk(&[1, 5, 900, 70_000, 2, 2, 5, 1 << 30, 31]);
        assert_eq!(ab_c, whole);
        assert_eq!(ab_c.percentile(99), whole.percentile(99));
    }

    #[test]
    fn equality_ignores_trailing_zeros() {
        let mut a = LatencyHistogram::new();
        a.record(3);
        let mut b = a.clone();
        b.record(100);
        // Force trailing zeros in a's storage by merging an empty-ish
        // histogram recorded high then compare against the short one.
        assert_ne!(a, b);
        let mut padded = LatencyHistogram {
            buckets: vec![0, 0, 0, 1, 0, 0, 0, 0],
            total: 1,
        };
        let mut short = LatencyHistogram::new();
        short.record(3);
        assert_eq!(padded, short);
        padded.record(3);
        assert_ne!(padded, short);
    }

    #[test]
    fn histogram_serde_round_trips() {
        let mut h = LatencyHistogram::new();
        for v in [0u64, 31, 32, 1 << 40, u64::MAX] {
            h.record(v);
        }
        let copy = LatencyHistogram::from_value(&h.to_value()).expect("round trip");
        assert_eq!(copy, h);
        assert_eq!(copy.percentile(99), h.percentile(99));
    }

    #[test]
    fn service_stats_merge_and_serde() {
        let mut a = ServiceStats::new();
        a.submitted = 10;
        a.committed = 8;
        a.shed = 1;
        a.batches = 2;
        a.max_queue_depth = 5;
        a.last_commit_at = 900;
        a.latency.record(100);
        let mut b = ServiceStats::new();
        b.submitted = 3;
        b.max_queue_depth = 9;
        b.last_commit_at = 400;
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.submitted, 13);
        assert_eq!(merged.committed, 8);
        assert_eq!(merged.max_queue_depth, 9);
        assert_eq!(merged.last_commit_at, 900);
        assert!(!merged.is_empty());
        assert!(ServiceStats::new().is_empty());
        let copy = ServiceStats::from_value(&merged.to_value()).expect("round trip");
        assert_eq!(copy, merged);
    }

    #[test]
    fn throughput_is_a_pure_report_time_ratio() {
        let mut s = ServiceStats::new();
        s.committed = 500;
        assert_eq!(s.throughput_per_kilotick(0), 0.0);
        let t = s.throughput_per_kilotick(1_000_000);
        assert!((t - 0.5).abs() < 1e-9);
    }
}
