//! Lock-free event counters shared between a process and its observers.
//!
//! Every execution substrate (simulator, thread runtime, m&m comparator)
//! increments one [`Counters`] per process; experiment harnesses aggregate
//! them with [`Counters::snapshot`] and [`CounterSnapshot::merge`]. The
//! counters back the paper's structural comparisons: consensus-object
//! invocations per phase (§III-C), message counts, coin usage, and round
//! counts.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic event counters for one process (or one whole run, when merged).
///
/// All increments use relaxed ordering: counters are statistics, not
/// synchronization.
///
/// # Examples
///
/// ```
/// use ofa_metrics::Counters;
///
/// let c = Counters::new();
/// c.inc_messages_sent(7);
/// c.inc_cluster_proposes(1);
/// let snap = c.snapshot();
/// assert_eq!(snap.messages_sent, 7);
/// assert_eq!(snap.cluster_proposes, 1);
/// ```
#[derive(Debug, Default)]
pub struct Counters {
    messages_sent: AtomicU64,
    messages_delivered: AtomicU64,
    broadcasts: AtomicU64,
    cluster_proposes: AtomicU64,
    register_ops: AtomicU64,
    local_coin_flips: AtomicU64,
    common_coin_queries: AtomicU64,
    rounds_started: AtomicU64,
    decisions: AtomicU64,
    decide_relays: AtomicU64,
    stale_dropped: AtomicU64,
}

macro_rules! counter_methods {
    ($($(#[$doc:meta])* $field:ident => $inc:ident, $get:ident;)*) => {
        $(
            $(#[$doc])*
            #[inline]
            pub fn $inc(&self, by: u64) {
                self.$field.fetch_add(by, Ordering::Relaxed);
            }

            /// Current value of the counter.
            #[inline]
            pub fn $get(&self) -> u64 {
                self.$field.load(Ordering::Relaxed)
            }
        )*
    };
}

impl Counters {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    counter_methods! {
        /// Point-to-point sends (a broadcast to `n` processes counts `n`).
        messages_sent => inc_messages_sent, messages_sent;
        /// Messages actually delivered to the algorithm.
        messages_delivered => inc_messages_delivered, messages_delivered;
        /// Invocations of the `broadcast` macro-operation.
        broadcasts => inc_broadcasts, broadcasts;
        /// Invocations of an intra-cluster (or m&m) consensus object
        /// — the quantity compared in §III-C of the paper.
        cluster_proposes => inc_cluster_proposes, cluster_proposes;
        /// Shared-register read/write operations.
        register_ops => inc_register_ops, register_ops;
        /// Local coin flips (Algorithm 2, line 14).
        local_coin_flips => inc_local_coin_flips, local_coin_flips;
        /// Common coin queries (Algorithm 3, line 6).
        common_coin_queries => inc_common_coin_queries, common_coin_queries;
        /// Rounds entered (line 3 of both algorithms).
        rounds_started => inc_rounds_started, rounds_started;
        /// Direct decisions (`return(v)` at line 12 / 9).
        decisions => inc_decisions, decisions;
        /// Decisions adopted from a relayed `DECIDE` message (line 17 / 13).
        decide_relays => inc_decide_relays, decide_relays;
        /// Stale mailbox entries discarded (past-slot arrivals plus
        /// buffers pruned when the served slot advanced).
        stale_dropped => inc_stale_dropped, stale_dropped;
    }

    /// Takes a plain-data copy of all counters.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            messages_sent: self.messages_sent(),
            messages_delivered: self.messages_delivered(),
            broadcasts: self.broadcasts(),
            cluster_proposes: self.cluster_proposes(),
            register_ops: self.register_ops(),
            local_coin_flips: self.local_coin_flips(),
            common_coin_queries: self.common_coin_queries(),
            rounds_started: self.rounds_started(),
            decisions: self.decisions(),
            decide_relays: self.decide_relays(),
            stale_dropped: self.stale_dropped(),
        }
    }
}

/// A plain-data copy of [`Counters`], suitable for aggregation and
/// serialization.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)] // field meanings documented on `Counters`
pub struct CounterSnapshot {
    pub messages_sent: u64,
    pub messages_delivered: u64,
    pub broadcasts: u64,
    pub cluster_proposes: u64,
    pub register_ops: u64,
    pub local_coin_flips: u64,
    pub common_coin_queries: u64,
    pub rounds_started: u64,
    pub decisions: u64,
    pub decide_relays: u64,
    pub stale_dropped: u64,
}

impl CounterSnapshot {
    /// Field-wise sum, used to aggregate per-process counters into a
    /// per-run total.
    pub fn merge(self, other: CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            messages_sent: self.messages_sent + other.messages_sent,
            messages_delivered: self.messages_delivered + other.messages_delivered,
            broadcasts: self.broadcasts + other.broadcasts,
            cluster_proposes: self.cluster_proposes + other.cluster_proposes,
            register_ops: self.register_ops + other.register_ops,
            local_coin_flips: self.local_coin_flips + other.local_coin_flips,
            common_coin_queries: self.common_coin_queries + other.common_coin_queries,
            rounds_started: self.rounds_started + other.rounds_started,
            decisions: self.decisions + other.decisions,
            decide_relays: self.decide_relays + other.decide_relays,
            stale_dropped: self.stale_dropped + other.stale_dropped,
        }
    }

    /// Sums an iterator of snapshots.
    pub fn merge_all<I: IntoIterator<Item = CounterSnapshot>>(iter: I) -> CounterSnapshot {
        iter.into_iter()
            .fold(CounterSnapshot::default(), CounterSnapshot::merge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn increments_accumulate() {
        let c = Counters::new();
        c.inc_messages_sent(3);
        c.inc_messages_sent(4);
        c.inc_rounds_started(1);
        assert_eq!(c.messages_sent(), 7);
        assert_eq!(c.rounds_started(), 1);
        assert_eq!(c.decisions(), 0);
    }

    #[test]
    fn snapshot_is_plain_copy() {
        let c = Counters::new();
        c.inc_local_coin_flips(2);
        let s1 = c.snapshot();
        c.inc_local_coin_flips(5);
        assert_eq!(s1.local_coin_flips, 2);
        assert_eq!(c.snapshot().local_coin_flips, 7);
    }

    #[test]
    fn merge_sums_fieldwise() {
        let a = CounterSnapshot {
            messages_sent: 1,
            decisions: 1,
            ..Default::default()
        };
        let b = CounterSnapshot {
            messages_sent: 10,
            cluster_proposes: 4,
            ..Default::default()
        };
        let m = a.merge(b);
        assert_eq!(m.messages_sent, 11);
        assert_eq!(m.cluster_proposes, 4);
        assert_eq!(m.decisions, 1);
    }

    #[test]
    fn merge_all_over_processes() {
        let snaps = (0..5).map(|i| CounterSnapshot {
            broadcasts: i,
            ..Default::default()
        });
        assert_eq!(CounterSnapshot::merge_all(snaps).broadcasts, 10);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let c = Arc::new(Counters::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc_messages_delivered(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.messages_delivered(), 8000);
    }
}
