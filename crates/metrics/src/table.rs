//! Plain-text and CSV table rendering for the experiment harness.
//!
//! Every experiment in `ofa-bench` returns a [`Table`]; the same value is
//! asserted on by tests, printed by the `experiments` binary, and dumped to
//! CSV for EXPERIMENTS.md.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Alignment of a rendered cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Align {
    Left,
    Right,
}

/// A titled table with a fixed set of columns.
///
/// # Examples
///
/// ```
/// use ofa_metrics::Table;
///
/// let mut t = Table::new("E4: decision rounds", &["n", "mean", "p99"]);
/// t.row(["4", "1.9", "5"]);
/// t.row(["8", "2.1", "6"]);
/// let text = t.render();
/// assert!(text.contains("E4: decision rounds"));
/// assert!(text.contains("mean"));
/// assert_eq!(t.to_csv().lines().count(), 3); // header + 2 rows
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new<S: Into<String>>(title: S, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of cells.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of columns.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} does not match {} columns",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
        self
    }

    /// Appends a row from anything `Display` (numbers, ids, …).
    pub fn row_display<I, D>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = D>,
        D: fmt::Display,
    {
        let row: Vec<String> = cells.into_iter().map(|d| d.to_string()).collect();
        self.row(row)
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Column headers.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Borrowed access to the data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Returns the cell at `(row, col)`, if present.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row)?.get(col).map(String::as_str)
    }

    /// Finds the first row whose first cell equals `key`.
    pub fn find_row(&self, key: &str) -> Option<&[String]> {
        self.rows
            .iter()
            .find(|r| r.first().map(String::as_str) == Some(key))
            .map(Vec::as_slice)
    }

    /// Renders the table as aligned monospace text.
    pub fn render(&self) -> String {
        let ncols = self.columns.len();
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        // Right-align a column iff every data cell in it parses as a number.
        let aligns: Vec<Align> = (0..ncols)
            .map(|i| {
                let numeric = !self.rows.is_empty()
                    && self.rows.iter().all(|r| {
                        let c = r[i].trim();
                        !c.is_empty() && c.parse::<f64>().is_ok()
                    });
                if numeric {
                    Align::Right
                } else {
                    Align::Left
                }
            })
            .collect();

        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let fmt_cell = |text: &str, width: usize, align: Align| -> String {
            let pad = width.saturating_sub(text.chars().count());
            match align {
                Align::Left => format!("{}{}", text, " ".repeat(pad)),
                Align::Right => format!("{}{}", " ".repeat(pad), text),
            }
        };
        // header
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| fmt_cell(c, widths[i], Align::Left))
            .collect();
        out.push_str(&header.join("  "));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| fmt_cell(c, widths[i], aligns[i]))
                .collect();
            out.push_str(cells.join("  ").trim_end());
            out.push('\n');
        }
        out
    }

    /// Renders the table as CSV (header + rows). Cells containing commas,
    /// quotes, or newlines are quoted.
    pub fn to_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .columns
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        for row in &self.rows {
            out.push('\n');
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        out
    }

    /// Renders the table as a GitHub-flavored Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("**{}**\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.columns.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Tables serialize as `{title, columns, rows}` — the machine-readable
/// form the `experiments --out <path>` flag writes, so CI can archive
/// bench trajectories (`BENCH_*.json`) per run.
impl Serialize for Table {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("title".to_string(), self.title.to_value()),
            ("columns".to_string(), self.columns.to_value()),
            ("rows".to_string(), self.rows.to_value()),
        ])
    }
}

impl Deserialize for Table {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| serde::Error::msg(format!("Table: missing field {name:?}")))
        };
        Ok(Table {
            title: Deserialize::from_value(field("title")?)?,
            columns: Deserialize::from_value(field("columns")?)?,
            rows: Deserialize::from_value(field("rows")?)?,
        })
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats an `f64` with `prec` decimals, trimming a trailing ".0" when
/// `prec == 1` renders an integral value exactly.
pub fn fmt_f64(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats a ratio `a / b` as e.g. `"3.2x"`, or `"inf"` when `b == 0`.
pub fn fmt_ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        "inf".to_string()
    } else {
        format!("{:.2}x", a / b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("title", &["name", "count"]);
        t.row(["alpha", "1"]);
        t.row(["beta", "22"]);
        t
    }

    #[test]
    fn render_alignment() {
        let text = sample().render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "title");
        assert_eq!(lines[1], "name   count");
        // numeric column is right-aligned
        assert_eq!(lines[3], "alpha      1");
        assert_eq!(lines[4], "beta      22");
    }

    #[test]
    fn mixed_column_left_aligned() {
        let mut t = Table::new("t", &["v"]);
        t.row(["1"]);
        t.row(["x"]);
        let lines: Vec<String> = t.render().lines().map(String::from).collect();
        assert_eq!(lines[3], "1");
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"he said \"\"hi\"\"\"");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_mismatch_panics() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn accessors() {
        let t = sample();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.cell(1, 1), Some("22"));
        assert_eq!(t.cell(5, 0), None);
        assert_eq!(t.find_row("beta").unwrap()[1], "22");
        assert!(t.find_row("gamma").is_none());
        assert_eq!(t.columns()[0], "name");
        assert_eq!(t.title(), "title");
    }

    #[test]
    fn row_display_accepts_numbers() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row_display([1.5, 2.0]);
        assert_eq!(t.cell(0, 0), Some("1.5"));
    }

    #[test]
    fn markdown_shape() {
        let md = sample().to_markdown();
        assert!(md.starts_with("**title**"));
        assert!(md.contains("| name | count |"));
        assert!(md.contains("| beta | 22 |"));
    }

    #[test]
    fn helpers() {
        assert_eq!(fmt_f64(1.23456, 2), "1.23");
        assert_eq!(fmt_ratio(6.0, 2.0), "3.00x");
        assert_eq!(fmt_ratio(1.0, 0.0), "inf");
    }
}
