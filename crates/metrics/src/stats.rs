//! Summary statistics for experiment samples (decision rounds, latencies,
//! message counts).

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample of `f64` observations.
///
/// # Examples
///
/// ```
/// use ofa_metrics::Summary;
///
/// let s = Summary::of([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert_eq!(s.count, 8);
/// assert_eq!(s.mean, 5.0);
/// assert_eq!(s.min, 2.0);
/// assert_eq!(s.max, 9.0);
/// assert!((s.std_dev - 2.138).abs() < 1e-3); // sample std dev
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than two observations).
    pub std_dev: f64,
    /// Smallest observation (0 for an empty sample).
    pub min: f64,
    /// Largest observation (0 for an empty sample).
    pub max: f64,
    /// Median (interpolated, 0 for an empty sample).
    pub median: f64,
    /// 99th percentile (nearest-rank, 0 for an empty sample).
    pub p99: f64,
}

impl Summary {
    /// Computes the summary of an iterator of observations.
    pub fn of<I>(samples: I) -> Summary
    where
        I: IntoIterator<Item = f64>,
    {
        let mut xs: Vec<f64> = samples.into_iter().filter(|x| x.is_finite()).collect();
        if xs.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p99: 0.0,
            };
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n >= 2 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        Summary {
            count: n,
            mean,
            std_dev: var.sqrt(),
            min: xs[0],
            max: xs[n - 1],
            median: interpolated_median(&xs),
            p99: nearest_rank(&xs, 0.99),
        }
    }

    /// Computes the summary of integer observations.
    pub fn of_ints<I>(samples: I) -> Summary
    where
        I: IntoIterator<Item = u64>,
    {
        Summary::of(samples.into_iter().map(|x| x as f64))
    }
}

fn interpolated_median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Nearest-rank percentile of a sorted, non-empty slice; `p` in `[0, 1]`.
fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    let rank = ((p * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// A discrete histogram over `u64` observations (e.g. decision rounds).
///
/// # Examples
///
/// ```
/// use ofa_metrics::Histogram;
///
/// let mut h = Histogram::new();
/// for r in [1u64, 1, 2, 2, 2, 5] {
///     h.record(r);
/// }
/// assert_eq!(h.count(), 6);
/// assert_eq!(h.frequency(2), 3);
/// assert_eq!(h.mode(), Some(2));
/// assert!((h.mean() - 13.0 / 6.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    buckets: std::collections::BTreeMap<u64, u64>,
    count: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        *self.buckets.entry(value).or_insert(0) += 1;
        self.count += 1;
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of observations equal to `value`.
    pub fn frequency(&self, value: u64) -> u64 {
        self.buckets.get(&value).copied().unwrap_or(0)
    }

    /// The most frequent value (smallest on ties), if any.
    pub fn mode(&self) -> Option<u64> {
        self.buckets
            .iter()
            .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(a.0)))
            .map(|(v, _)| *v)
    }

    /// Mean of the observations (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let sum: u64 = self.buckets.iter().map(|(v, c)| v * c).sum();
        sum as f64 / self.count as f64
    }

    /// Largest observed value, if any.
    pub fn max(&self) -> Option<u64> {
        self.buckets.keys().next_back().copied()
    }

    /// Iterates over `(value, frequency)` in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(v, c)| (*v, *c))
    }

    /// Fraction of observations `<= value` (0 for an empty histogram).
    pub fn cdf(&self, value: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let below: u64 = self.buckets.range(..=value).map(|(_, c)| *c).sum();
        below as f64 / self.count as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (v, c) in other.iter() {
            *self.buckets.entry(v).or_insert(0) += c;
            self.count += c;
        }
    }
}

impl Extend<u64> for Histogram {
    fn extend<T: IntoIterator<Item = u64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut h = Histogram::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::of(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.p99, 0.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of([42.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.p99, 42.0);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(Summary::of([1.0, 3.0, 2.0]).median, 2.0);
        assert_eq!(Summary::of([1.0, 2.0, 3.0, 4.0]).median, 2.5);
    }

    #[test]
    fn p99_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(Summary::of(xs).p99, 99.0);
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        assert_eq!(Summary::of(xs).p99, 10.0);
    }

    #[test]
    fn non_finite_values_are_dropped() {
        let s = Summary::of([1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 2.0);
    }

    #[test]
    fn of_ints_matches_of() {
        assert_eq!(Summary::of_ints([1, 2, 3]), Summary::of([1.0, 2.0, 3.0]));
    }

    #[test]
    fn histogram_cdf_and_merge() {
        let mut a: Histogram = [1u64, 2, 2].into_iter().collect();
        let b: Histogram = [2u64, 3].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.frequency(2), 3);
        assert_eq!(a.cdf(2), 0.8);
        assert_eq!(a.cdf(0), 0.0);
        assert_eq!(a.cdf(3), 1.0);
        assert_eq!(a.max(), Some(3));
    }

    #[test]
    fn histogram_mode_prefers_smallest_on_tie() {
        let h: Histogram = [5u64, 5, 1, 1, 9].into_iter().collect();
        assert_eq!(h.mode(), Some(1));
    }
}
