//! Counters, summary statistics, and table rendering for the `one-for-all`
//! experiment harness.
//!
//! Four building blocks:
//!
//! * [`Counters`] / [`CounterSnapshot`] — lock-free per-process event
//!   counters (messages, consensus-object invocations, coin flips, rounds)
//!   backing the paper's structural comparisons,
//! * [`Summary`] / [`Histogram`] — statistics over samples such as decision
//!   rounds and virtual-time latencies,
//! * [`LatencyHistogram`] / [`ServiceStats`] — the client-service metrics
//!   layer: deterministic fixed-bucket submit→commit latency (p50/p99
//!   without floats on the hot path), commit throughput over virtual time,
//!   and queue-depth/backpressure gauges,
//! * [`Table`] — the uniform output format of every experiment: rendered as
//!   text by the `experiments` binary, asserted on in tests, exported as
//!   CSV/Markdown for EXPERIMENTS.md.
//!
//! # Examples
//!
//! ```
//! use ofa_metrics::{Histogram, Summary, Table};
//!
//! let rounds: Histogram = [1u64, 2, 2, 3].into_iter().collect();
//! let s = Summary::of_ints(rounds.iter().flat_map(|(v, c)| std::iter::repeat(v).take(c as usize)));
//! let mut t = Table::new("rounds", &["mean", "max"]);
//! t.row([format!("{:.2}", s.mean), format!("{}", s.max)]);
//! assert!(t.render().contains("2.00"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod counters;
mod service;
mod stats;
mod table;

pub use counters::{CounterSnapshot, Counters};
pub use service::{LatencyHistogram, ServiceStats};
pub use stats::{Histogram, Summary};
pub use table::{fmt_f64, fmt_ratio, Table};
