//! Wait-free consensus objects built from `compare&swap` (§II-A).
//!
//! Because `compare&swap` has consensus number ∞, a single CAS cell solves
//! consensus for any number of processes despite any number of crashes:
//! every process tries to install its proposal into an empty cell; exactly
//! one CAS wins, and every proposer returns the installed value. This is
//! the deterministic object the paper assumes *inside each cluster*
//! (`CONS_x[r, 1]`, `CONS_x[r, 2]`).

use crate::{CasCell, TestAndSet, WordRegister};
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Values storable in a [`CasConsensus`] object: encodable into a `u64`
/// strictly below `u64::MAX` (the empty sentinel).
///
/// Implementations must round-trip: `decode(encode(v)) == v`.
pub trait CodableValue: Copy + Eq {
    /// Encodes into a `u64 < u64::MAX`.
    fn encode(self) -> u64;
    /// Decodes a value previously produced by [`CodableValue::encode`].
    fn decode(word: u64) -> Self;
}

impl CodableValue for bool {
    fn encode(self) -> u64 {
        self as u64
    }
    fn decode(word: u64) -> Self {
        word != 0
    }
}

impl CodableValue for u8 {
    fn encode(self) -> u64 {
        self as u64
    }
    fn decode(word: u64) -> Self {
        word as u8
    }
}

impl CodableValue for u32 {
    fn encode(self) -> u64 {
        self as u64
    }
    fn decode(word: u64) -> Self {
        word as u32
    }
}

impl<T: CodableValue> CodableValue for Option<T> {
    fn encode(self) -> u64 {
        match self {
            None => 0,
            // Shift by one so None and Some(zero-encoding) stay distinct.
            Some(v) => v.encode() + 1,
        }
    }
    fn decode(word: u64) -> Self {
        if word == 0 {
            None
        } else {
            Some(T::decode(word - 1))
        }
    }
}

/// A wait-free, linearizable, first-proposal-wins consensus object.
///
/// Satisfies the three consensus properties for any number of concurrent
/// proposers:
///
/// * **validity** — the decided value was proposed,
/// * **agreement** — all proposers return the same value,
/// * **wait-free termination** — `propose` returns in a bounded number of
///   its own steps, regardless of crashes of other processes.
///
/// # Examples
///
/// ```
/// use ofa_sharedmem::CasConsensus;
///
/// let cons: CasConsensus<u8> = CasConsensus::new();
/// assert_eq!(cons.propose(4), 4);  // first proposal wins
/// assert_eq!(cons.propose(9), 4);  // later proposals adopt it
/// assert_eq!(cons.decided(), Some(4));
/// ```
pub struct CasConsensus<V> {
    cell: CasCell,
    proposals: AtomicU64,
    _marker: PhantomData<V>,
}

const EMPTY: u64 = u64::MAX;

impl<V: CodableValue> CasConsensus<V> {
    /// Creates an undecided consensus object.
    pub fn new() -> Self {
        CasConsensus {
            cell: CasCell::new(EMPTY),
            proposals: AtomicU64::new(0),
            _marker: PhantomData,
        }
    }

    /// Proposes `v`; returns the decided value (the first proposal to
    /// arrive). Wait-free: one CAS plus at most one load.
    pub fn propose(&self, v: V) -> V {
        self.proposals.fetch_add(1, Ordering::Relaxed);
        let enc = v.encode();
        debug_assert_ne!(enc, EMPTY, "encoding may not collide with sentinel");
        match self.cell.compare_and_swap(EMPTY, enc) {
            Ok(_) => v,
            Err(actual) => V::decode(actual),
        }
    }

    /// The decided value, if any proposal has arrived yet.
    pub fn decided(&self) -> Option<V> {
        match self.cell.load() {
            EMPTY => None,
            w => Some(V::decode(w)),
        }
    }

    /// Number of `propose` invocations so far (statistics only).
    pub fn proposal_count(&self) -> u64 {
        self.proposals.load(Ordering::Relaxed)
    }
}

impl<V: CodableValue> Default for CasConsensus<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: CodableValue + fmt::Debug> fmt::Debug for CasConsensus<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CasConsensus")
            .field("decided", &self.decided())
            .field("proposals", &self.proposal_count())
            .finish()
    }
}

/// Two-process consensus from `test&set` plus two registers — the classic
/// construction showing `test&set` has consensus number **exactly 2**
/// (Herlihy 1991), included as an executable piece of the hierarchy the
/// paper's §I recalls.
///
/// Callers must identify as process 0 or process 1.
///
/// # Examples
///
/// ```
/// use ofa_sharedmem::TasConsensus;
///
/// let cons = TasConsensus::new();
/// let a = cons.propose(0, 10);
/// let b = cons.propose(1, 20);
/// assert_eq!(a, b);
/// assert!(a == 10 || a == 20);
/// ```
#[derive(Debug, Default)]
pub struct TasConsensus {
    flag: TestAndSet,
    prefs: [WordRegister; 2],
}

impl TasConsensus {
    /// Creates an undecided object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Proposes `v` as process `who` (0 or 1); returns the agreed value.
    ///
    /// # Panics
    ///
    /// Panics if `who > 1` — `test&set` cannot serve three processes.
    pub fn propose(&self, who: usize, v: u64) -> u64 {
        assert!(who <= 1, "test&set consensus is limited to 2 processes");
        self.prefs[who].write(v + 1); // +1 so 0 means "not yet written"
        if self.flag.test_and_set() {
            v
        } else {
            // The other process won; its preference is already visible
            // because it wrote before its test&set.
            let other = self.prefs[1 - who].read();
            debug_assert_ne!(other, 0, "winner writes preference first");
            other - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn first_proposal_wins_sequentially() {
        let c: CasConsensus<u8> = CasConsensus::new();
        assert_eq!(c.decided(), None);
        assert_eq!(c.propose(3), 3);
        assert_eq!(c.propose(5), 3);
        assert_eq!(c.decided(), Some(3));
        assert_eq!(c.proposal_count(), 2);
    }

    #[test]
    fn option_encoding_distinguishes_none_from_some_zero() {
        let c: CasConsensus<Option<bool>> = CasConsensus::new();
        assert_eq!(c.propose(None), None);
        assert_eq!(c.propose(Some(false)), None);
        let d: CasConsensus<Option<bool>> = CasConsensus::new();
        assert_eq!(d.propose(Some(false)), Some(false));
        assert_eq!(d.propose(None), Some(false));
    }

    #[test]
    fn codable_round_trips() {
        for v in [0u8, 1, 2, 255] {
            assert_eq!(u8::decode(v.encode()), v);
        }
        for v in [None, Some(true), Some(false)] {
            assert_eq!(Option::<bool>::decode(v.encode()), v);
        }
        assert_eq!(u32::decode(u32::MAX.encode()), u32::MAX);
    }

    #[test]
    fn agreement_validity_under_heavy_contention() {
        for _ in 0..50 {
            let c: Arc<CasConsensus<u8>> = Arc::new(CasConsensus::new());
            let handles: Vec<_> = (0..8u8)
                .map(|v| {
                    let c = Arc::clone(&c);
                    std::thread::spawn(move || c.propose(v))
                })
                .collect();
            let outcomes: Vec<u8> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            let first = outcomes[0];
            assert!(outcomes.iter().all(|&o| o == first), "agreement violated");
            assert!(first < 8, "validity violated");
            assert_eq!(c.decided(), Some(first));
        }
    }

    #[test]
    fn tas_consensus_agreement_over_many_races() {
        for round in 0..200u64 {
            let c = Arc::new(TasConsensus::new());
            let c0 = Arc::clone(&c);
            let c1 = Arc::clone(&c);
            let a = std::thread::spawn(move || c0.propose(0, round * 2));
            let b = std::thread::spawn(move || c1.propose(1, round * 2 + 1));
            let (ra, rb) = (a.join().unwrap(), b.join().unwrap());
            assert_eq!(ra, rb, "two-process agreement violated");
            assert!(ra == round * 2 || ra == round * 2 + 1, "validity violated");
        }
    }

    #[test]
    #[should_panic(expected = "limited to 2")]
    fn tas_consensus_rejects_third_process() {
        TasConsensus::new().propose(2, 1);
    }
}
