//! The per-cluster shared memory `MEM_x` (§II-A and §III-B).
//!
//! Algorithm 2 needs, per cluster, two unbounded arrays of consensus
//! objects `CONS_x[r, 1]` and `CONS_x[r, 2]` (`r >= 1`); Algorithm 3 needs
//! a single array `CONS_x[r]`. [`ClusterMemory`] materializes objects
//! lazily on first access, so the "unbounded array" of the paper costs
//! memory only for rounds actually executed. [`MemoryBank`] holds one
//! [`ClusterMemory`] per cluster of a partition.

use crate::{CasConsensus, CodableValue};
use ofa_topology::{ClusterId, Partition};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Address of one consensus object inside a cluster memory: protocol
/// instance, round number, and phase within the round.
///
/// Algorithm 2 uses phases 1 and 2; Algorithm 3 uses a single phase (0 by
/// convention). Higher layers that run *many* consensus instances over the
/// same memory (multivalued consensus, replicated logs — see `ofa-smr`)
/// disambiguate them with the `instance` coordinate; plain single-shot
/// consensus uses instance 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Slot {
    /// Protocol instance (0 for single-shot consensus).
    pub instance: u64,
    /// Round number `r >= 1`.
    pub round: u64,
    /// Phase within the round.
    pub phase: u8,
}

impl Slot {
    /// Creates a slot address in instance 0.
    pub fn new(round: u64, phase: u8) -> Self {
        Slot {
            instance: 0,
            round,
            phase,
        }
    }

    /// Creates a slot address in an explicit instance.
    pub fn in_instance(instance: u64, round: u64, phase: u8) -> Self {
        Slot {
            instance,
            round,
            phase,
        }
    }
}

impl fmt::Display for Slot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.instance == 0 {
            write!(f, "[{},{}]", self.round, self.phase)
        } else {
            write!(f, "[i{}:{},{}]", self.instance, self.round, self.phase)
        }
    }
}

/// The shared memory of one cluster: a lazily-allocated, unbounded array of
/// wait-free consensus objects, indexed by [`Slot`].
///
/// Values are stored in their [`CodableValue`] `u64` encoding so that one
/// memory can serve consensus over any codable type; the typed wrappers
/// live in `ofa-core`.
///
/// # Examples
///
/// ```
/// use ofa_sharedmem::{ClusterMemory, Slot};
///
/// let mem = ClusterMemory::new();
/// // Two processes of the cluster propose for round 1, phase 1:
/// let a = mem.propose_raw(Slot::new(1, 1), 0);
/// let b = mem.propose_raw(Slot::new(1, 1), 1);
/// assert_eq!(a, b); // intra-cluster agreement
/// assert_eq!(mem.propose_count(), 2);
/// ```
#[derive(Default)]
pub struct ClusterMemory {
    objects: Mutex<HashMap<Slot, Arc<CasConsensus<RawWord>>>>,
    proposes: AtomicU64,
}

/// Internal codable wrapper for raw `u64` payloads (must stay below the
/// sentinel; enforced by `propose_raw`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RawWord(u64);

impl CodableValue for RawWord {
    fn encode(self) -> u64 {
        self.0
    }
    fn decode(word: u64) -> Self {
        RawWord(word)
    }
}

impl ClusterMemory {
    /// Creates an empty cluster memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Proposes the encoded value `enc` to the consensus object at `slot`,
    /// returning the decided encoding. Lock usage is confined to the
    /// object directory; the consensus object itself is lock-free.
    ///
    /// # Panics
    ///
    /// Panics if `enc == u64::MAX` (reserved sentinel).
    pub fn propose_raw(&self, slot: Slot, enc: u64) -> u64 {
        assert_ne!(enc, u64::MAX, "u64::MAX is reserved as the empty sentinel");
        self.proposes.fetch_add(1, Ordering::Relaxed);
        let obj = self.object(slot);
        obj.propose(RawWord(enc)).0
    }

    /// Typed convenience over [`ClusterMemory::propose_raw`].
    pub fn propose<V: CodableValue>(&self, slot: Slot, value: V) -> V {
        V::decode(self.propose_raw(slot, value.encode()))
    }

    /// The value already decided at `slot`, if any.
    pub fn decided_raw(&self, slot: Slot) -> Option<u64> {
        let objects = self.objects.lock();
        objects.get(&slot).and_then(|o| o.decided()).map(|w| w.0)
    }

    /// Total `propose` invocations on this memory — the §III-C metric
    /// (a hybrid-model process performs exactly one per phase).
    pub fn propose_count(&self) -> u64 {
        self.proposes.load(Ordering::Relaxed)
    }

    /// Number of consensus objects materialized so far.
    pub fn object_count(&self) -> usize {
        self.objects.lock().len()
    }

    /// The decided contents of this memory in canonical (sorted) order,
    /// plus the propose counter — everything a checkpoint needs. Every
    /// materialized object in a quiescent deterministic run is decided
    /// (propose decides immediately), so undecided objects are skipped:
    /// they are indistinguishable from never-materialized ones.
    pub fn checkpoint(&self) -> (Vec<(Slot, u64)>, u64) {
        let objects = self.objects.lock();
        let mut decided: Vec<(Slot, u64)> = objects
            .iter()
            .filter_map(|(slot, obj)| obj.decided().map(|w| (*slot, w.0)))
            .collect();
        decided.sort_unstable();
        (decided, self.propose_count())
    }

    /// Rebuilds a memory from a [`ClusterMemory::checkpoint`]: each slot
    /// is re-decided directly (without charging the propose counter) and
    /// the counter is restored to its captured value.
    pub fn restore(decided: &[(Slot, u64)], proposes: u64) -> Self {
        let mem = ClusterMemory::new();
        {
            let mut objects = mem.objects.lock();
            for &(slot, word) in decided {
                let obj: Arc<CasConsensus<RawWord>> = Arc::default();
                obj.propose(RawWord(word));
                objects.insert(slot, obj);
            }
        }
        mem.proposes.store(proposes, Ordering::Relaxed);
        mem
    }

    fn object(&self, slot: Slot) -> Arc<CasConsensus<RawWord>> {
        let mut objects = self.objects.lock();
        Arc::clone(objects.entry(slot).or_default())
    }
}

impl fmt::Debug for ClusterMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ClusterMemory")
            .field("objects", &self.object_count())
            .field("proposes", &self.propose_count())
            .finish()
    }
}

/// One [`ClusterMemory`] per cluster of a partition — the `m` memories of
/// the hybrid model (the m&m model would need `n`; see `ofa-mm`).
///
/// # Examples
///
/// ```
/// use ofa_sharedmem::{MemoryBank, Slot};
/// use ofa_topology::{Partition, ProcessId};
///
/// let part = Partition::fig1_right();
/// let bank = MemoryBank::for_partition(&part);
/// assert_eq!(bank.len(), 3);
///
/// // p2 and p5 share P[2]'s memory; p1 does not.
/// let v2 = bank.memory_of(&part, ProcessId(1)).propose(Slot::new(1, 1), 0u8);
/// let v5 = bank.memory_of(&part, ProcessId(4)).propose(Slot::new(1, 1), 1u8);
/// assert_eq!(v2, v5);
/// let v1 = bank.memory_of(&part, ProcessId(0)).propose(Slot::new(1, 1), 1u8);
/// assert_eq!(v1, 1);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryBank {
    memories: Vec<Arc<ClusterMemory>>,
}

impl MemoryBank {
    /// Creates a bank with one fresh memory per cluster of `partition`.
    pub fn for_partition(partition: &Partition) -> Self {
        MemoryBank {
            memories: (0..partition.m())
                .map(|_| Arc::new(ClusterMemory::new()))
                .collect(),
        }
    }

    /// Creates a bank with `m` fresh memories.
    pub fn with_len(m: usize) -> Self {
        MemoryBank {
            memories: (0..m).map(|_| Arc::new(ClusterMemory::new())).collect(),
        }
    }

    /// Number of memories (`m`).
    pub fn len(&self) -> usize {
        self.memories.len()
    }

    /// `true` if the bank holds no memory.
    pub fn is_empty(&self) -> bool {
        self.memories.is_empty()
    }

    /// The memory of cluster `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.index() >= len()`.
    pub fn memory(&self, x: ClusterId) -> &Arc<ClusterMemory> {
        &self.memories[x.index()]
    }

    /// The memory of the cluster process `i` belongs to.
    pub fn memory_of(
        &self,
        partition: &Partition,
        i: ofa_topology::ProcessId,
    ) -> &Arc<ClusterMemory> {
        self.memory(partition.cluster_of(i))
    }

    /// Total `propose` invocations across all memories.
    pub fn total_proposes(&self) -> u64 {
        self.memories.iter().map(|m| m.propose_count()).sum()
    }

    /// Total consensus objects materialized across all memories.
    pub fn total_objects(&self) -> usize {
        self.memories.iter().map(|m| m.object_count()).sum()
    }

    /// Per-cluster [`ClusterMemory::checkpoint`]s, in cluster order.
    pub fn checkpoint(&self) -> Vec<(Vec<(Slot, u64)>, u64)> {
        self.memories.iter().map(|m| m.checkpoint()).collect()
    }

    /// Rebuilds a bank from a [`MemoryBank::checkpoint`].
    pub fn restore(clusters: &[(Vec<(Slot, u64)>, u64)]) -> Self {
        MemoryBank {
            memories: clusters
                .iter()
                .map(|(decided, proposes)| Arc::new(ClusterMemory::restore(decided, *proposes)))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofa_topology::ProcessId;

    #[test]
    fn distinct_slots_are_independent() {
        let mem = ClusterMemory::new();
        assert_eq!(mem.propose_raw(Slot::new(1, 1), 7), 7);
        assert_eq!(mem.propose_raw(Slot::new(1, 2), 9), 9);
        assert_eq!(mem.propose_raw(Slot::new(2, 1), 3), 3);
        assert_eq!(mem.object_count(), 3);
        assert_eq!(mem.propose_count(), 3);
    }

    #[test]
    fn same_slot_agrees() {
        let mem = ClusterMemory::new();
        let s = Slot::new(4, 2);
        assert_eq!(mem.propose_raw(s, 100), 100);
        assert_eq!(mem.propose_raw(s, 200), 100);
        assert_eq!(mem.decided_raw(s), Some(100));
        assert_eq!(mem.decided_raw(Slot::new(4, 1)), None);
    }

    #[test]
    fn typed_propose_round_trips() {
        let mem = ClusterMemory::new();
        let got: Option<bool> = mem.propose(Slot::new(1, 0), Some(true));
        assert_eq!(got, Some(true));
        let again: Option<bool> = mem.propose(Slot::new(1, 0), None);
        assert_eq!(again, Some(true));
    }

    #[test]
    #[should_panic(expected = "sentinel")]
    fn sentinel_is_rejected() {
        ClusterMemory::new().propose_raw(Slot::new(1, 1), u64::MAX);
    }

    #[test]
    fn concurrent_cluster_members_agree() {
        use std::sync::Arc;
        let mem = Arc::new(ClusterMemory::new());
        for round in 1..=20u64 {
            let handles: Vec<_> = (0..6u64)
                .map(|v| {
                    let mem = Arc::clone(&mem);
                    std::thread::spawn(move || mem.propose_raw(Slot::new(round, 1), v))
                })
                .collect();
            let got: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert!(
                got.windows(2).all(|w| w[0] == w[1]),
                "round {round} disagreed"
            );
            assert!(got[0] < 6);
        }
    }

    #[test]
    fn bank_memories_are_disjoint() {
        let part = Partition::fig1_left(); // {p1,p2,p3} {p4,p5} {p6,p7}
        let bank = MemoryBank::for_partition(&part);
        let s = Slot::new(1, 1);
        assert_eq!(bank.memory_of(&part, ProcessId(0)).propose_raw(s, 0), 0);
        // p4 is in a different cluster: its memory is untouched.
        assert_eq!(bank.memory_of(&part, ProcessId(3)).propose_raw(s, 1), 1);
        assert_eq!(bank.total_proposes(), 2);
        assert_eq!(bank.total_objects(), 2);
        assert_eq!(bank.len(), 3);
    }

    #[test]
    fn slot_display() {
        assert_eq!(Slot::new(3, 2).to_string(), "[3,2]");
    }
}
