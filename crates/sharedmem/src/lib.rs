//! Intra-cluster shared memory for the hybrid communication model
//! (Raynal & Cao, ICDCS 2019, §II-A).
//!
//! Each cluster `P[x]` owns a memory `MEM_x` of atomic registers enriched
//! with a synchronization operation of consensus number ∞, so deterministic
//! wait-free consensus is solvable *inside* a cluster. This crate provides
//! that substrate:
//!
//! * [`AtomicRegister`] / [`WordRegister`] — linearizable registers,
//! * [`CasCell`], [`TestAndSet`], [`FetchAdd`], [`LlScCell`] — the
//!   synchronization primitives the paper cites (Herlihy's hierarchy),
//! * [`CasConsensus`] — the wait-free first-proposal-wins consensus object
//!   used as `CONS_x[r, ph]`,
//! * [`TasConsensus`] — the classic 2-process construction from `test&set`,
//! * [`ClusterMemory`] / [`MemoryBank`] — the lazily-allocated unbounded
//!   arrays of consensus objects, one memory per cluster.
//!
//! # Examples
//!
//! ```
//! use ofa_sharedmem::{MemoryBank, Slot};
//! use ofa_topology::{Partition, ProcessId};
//!
//! let part = Partition::fig1_right();
//! let bank = MemoryBank::for_partition(&part);
//! // All of P[2] agrees on the phase-1 estimate of round 1:
//! let v = bank.memory_of(&part, ProcessId(1)).propose(Slot::new(1, 1), 1u8);
//! assert_eq!(v, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster_memory;
mod consensus;
mod primitives;
mod register;

pub use cluster_memory::{ClusterMemory, MemoryBank, Slot};
pub use consensus::{CasConsensus, CodableValue, TasConsensus};
pub use primitives::{CasCell, FetchAdd, LlScCell, LlToken, TestAndSet};
pub use register::{AtomicRegister, WordRegister};
