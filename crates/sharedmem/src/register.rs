//! Atomic (linearizable) read/write registers.
//!
//! The paper's cluster memory `MEM_x` is "made up of atomic registers"
//! enriched with a consensus-number-∞ synchronization operation. The
//! registers here are multi-writer multi-reader and linearizable; inside a
//! cluster they are plain in-process shared memory, which is exactly the
//! multicore deployment the paper motivates.

use parking_lot::RwLock;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A multi-writer multi-reader atomic register holding a `Clone` value.
///
/// Reads and writes are individually linearizable (guarded by a
/// [`parking_lot::RwLock`], which never poisons). For machine-word values
/// prefer [`WordRegister`], which is lock-free.
///
/// # Examples
///
/// ```
/// use ofa_sharedmem::AtomicRegister;
///
/// let r = AtomicRegister::new(vec![1, 2]);
/// r.write(vec![3]);
/// assert_eq!(r.read(), vec![3]);
/// ```
pub struct AtomicRegister<T> {
    cell: RwLock<T>,
    ops: AtomicU64,
}

impl<T: Clone> AtomicRegister<T> {
    /// Creates a register with an initial value.
    pub fn new(initial: T) -> Self {
        AtomicRegister {
            cell: RwLock::new(initial),
            ops: AtomicU64::new(0),
        }
    }

    /// Linearizable read.
    pub fn read(&self) -> T {
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.cell.read().clone()
    }

    /// Linearizable write.
    pub fn write(&self, value: T) {
        self.ops.fetch_add(1, Ordering::Relaxed);
        *self.cell.write() = value;
    }

    /// Number of read/write operations performed so far (statistics only).
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }
}

impl<T: Clone + fmt::Debug> fmt::Debug for AtomicRegister<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtomicRegister")
            .field("value", &*self.cell.read())
            .field("ops", &self.op_count())
            .finish()
    }
}

impl<T: Clone + Default> Default for AtomicRegister<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// A lock-free atomic register over a single machine word.
///
/// # Examples
///
/// ```
/// use ofa_sharedmem::WordRegister;
///
/// let r = WordRegister::new(7);
/// assert_eq!(r.read(), 7);
/// r.write(9);
/// assert_eq!(r.read(), 9);
/// ```
#[derive(Debug, Default)]
pub struct WordRegister {
    word: AtomicU64,
}

impl WordRegister {
    /// Creates a register with an initial value.
    pub fn new(initial: u64) -> Self {
        WordRegister {
            word: AtomicU64::new(initial),
        }
    }

    /// Linearizable (sequentially consistent) read.
    #[inline]
    pub fn read(&self) -> u64 {
        self.word.load(Ordering::SeqCst)
    }

    /// Linearizable (sequentially consistent) write.
    #[inline]
    pub fn write(&self, value: u64) {
        self.word.store(value, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_write_round_trip() {
        let r = AtomicRegister::new(0u32);
        assert_eq!(r.read(), 0);
        r.write(5);
        assert_eq!(r.read(), 5);
        assert_eq!(r.op_count(), 3);
    }

    #[test]
    fn default_uses_t_default() {
        let r: AtomicRegister<String> = AtomicRegister::default();
        assert_eq!(r.read(), "");
    }

    #[test]
    fn concurrent_reads_see_some_written_value() {
        let r = Arc::new(AtomicRegister::new(0u64));
        let writers: Vec<_> = (1..=4u64)
            .map(|v| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || r.write(v))
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        assert!((1..=4).contains(&r.read()));
    }

    #[test]
    fn word_register_round_trip() {
        let r = WordRegister::new(1);
        r.write(u64::MAX);
        assert_eq!(r.read(), u64::MAX);
    }
}
