//! Synchronization primitives of Herlihy's hierarchy (§I and §II-A of the
//! paper).
//!
//! The paper requires each cluster memory to offer an operation with
//! consensus number ∞ — e.g. `compare&swap` — and mentions `fetch&add` and
//! `LL/SC` as alternatives. This module implements all three plus
//! `test&set`, both because the consensus objects of
//! [`crate::CasConsensus`] are built from them and because the hierarchy
//! itself is exercised by tests ([`TasConsensus`] solves consensus for
//! exactly 2 processes, matching `test&set`'s consensus number of 2).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A `compare&swap` cell over a `u64` word (consensus number ∞).
///
/// # Examples
///
/// ```
/// use ofa_sharedmem::CasCell;
///
/// let c = CasCell::new(0);
/// assert_eq!(c.compare_and_swap(0, 7), Ok(0));
/// assert_eq!(c.compare_and_swap(0, 9), Err(7)); // lost the race
/// assert_eq!(c.load(), 7);
/// ```
#[derive(Debug, Default)]
pub struct CasCell {
    word: AtomicU64,
}

impl CasCell {
    /// Creates a cell holding `initial`.
    pub fn new(initial: u64) -> Self {
        CasCell {
            word: AtomicU64::new(initial),
        }
    }

    /// Atomically replaces the value with `new` iff it currently equals
    /// `expected`. Returns `Ok(expected)` on success and `Err(actual)` on
    /// failure.
    #[inline]
    pub fn compare_and_swap(&self, expected: u64, new: u64) -> Result<u64, u64> {
        self.word
            .compare_exchange(expected, new, Ordering::SeqCst, Ordering::SeqCst)
    }

    /// Current value.
    #[inline]
    pub fn load(&self) -> u64 {
        self.word.load(Ordering::SeqCst)
    }

    /// Unconditional store (a plain register write).
    #[inline]
    pub fn store(&self, value: u64) {
        self.word.store(value, Ordering::SeqCst);
    }
}

/// A one-shot `test&set` bit (consensus number 2).
///
/// # Examples
///
/// ```
/// use ofa_sharedmem::TestAndSet;
///
/// let t = TestAndSet::new();
/// assert!(t.test_and_set());  // winner
/// assert!(!t.test_and_set()); // everyone after loses
/// ```
#[derive(Debug, Default)]
pub struct TestAndSet {
    flag: AtomicBool,
}

impl TestAndSet {
    /// Creates an unset flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Atomically sets the flag; returns `true` iff this call was the first.
    #[inline]
    pub fn test_and_set(&self) -> bool {
        !self.flag.swap(true, Ordering::SeqCst)
    }

    /// `true` if some call already won.
    pub fn is_set(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// A `fetch&add` counter (consensus number 2).
///
/// # Examples
///
/// ```
/// use ofa_sharedmem::FetchAdd;
///
/// let f = FetchAdd::new(0);
/// assert_eq!(f.fetch_add(5), 0);
/// assert_eq!(f.fetch_add(1), 5);
/// assert_eq!(f.load(), 6);
/// ```
#[derive(Debug, Default)]
pub struct FetchAdd {
    word: AtomicU64,
}

impl FetchAdd {
    /// Creates a counter holding `initial`.
    pub fn new(initial: u64) -> Self {
        FetchAdd {
            word: AtomicU64::new(initial),
        }
    }

    /// Atomically adds `by`, returning the previous value.
    #[inline]
    pub fn fetch_add(&self, by: u64) -> u64 {
        self.word.fetch_add(by, Ordering::SeqCst)
    }

    /// Current value.
    #[inline]
    pub fn load(&self) -> u64 {
        self.word.load(Ordering::SeqCst)
    }
}

/// An LL/SC (load-linked / store-conditional) cell, emulated with a stamped
/// CAS so that an SC fails iff any store happened since the matching LL
/// (the emulation is consequently immune to the ABA problem, like real
/// LL/SC; consensus number ∞).
///
/// # Examples
///
/// ```
/// use ofa_sharedmem::LlScCell;
///
/// let c = LlScCell::new(10);
/// let link = c.load_linked();
/// assert_eq!(link.value(), 10);
/// assert!(c.store_conditional(&link, 11));
/// assert!(!c.store_conditional(&link, 12)); // link consumed by the store
/// assert_eq!(c.load_linked().value(), 11);
/// ```
#[derive(Debug, Default)]
pub struct LlScCell {
    /// Packs `(stamp << 32) | value` — values must fit in 32 bits.
    word: AtomicU64,
}

/// The token returned by [`LlScCell::load_linked`], consumed by
/// [`LlScCell::store_conditional`].
#[derive(Debug, Clone, Copy)]
pub struct LlToken {
    raw: u64,
}

impl LlToken {
    /// The value observed by the `load_linked` that produced this token.
    pub fn value(&self) -> u32 {
        (self.raw & 0xFFFF_FFFF) as u32
    }
}

impl LlScCell {
    /// Creates a cell holding `initial`.
    pub fn new(initial: u32) -> Self {
        LlScCell {
            word: AtomicU64::new(initial as u64),
        }
    }

    /// Load-linked: reads the value and remembers the version stamp.
    pub fn load_linked(&self) -> LlToken {
        LlToken {
            raw: self.word.load(Ordering::SeqCst),
        }
    }

    /// Store-conditional: writes `value` iff no store (conditional or not)
    /// happened since `token` was obtained. Returns `true` on success.
    pub fn store_conditional(&self, token: &LlToken, value: u32) -> bool {
        let stamp = token.raw >> 32;
        let new = ((stamp + 1) << 32) | value as u64;
        self.word
            .compare_exchange(token.raw, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn cas_single_winner_under_contention() {
        let c = Arc::new(CasCell::new(0));
        let handles: Vec<_> = (1..=16u64)
            .map(|v| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || c.compare_and_swap(0, v).is_ok())
            })
            .collect();
        let wins = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&w| w)
            .count();
        assert_eq!(wins, 1, "exactly one CAS(0, v) may succeed");
        assert!((1..=16).contains(&c.load()));
    }

    #[test]
    fn tas_exactly_one_winner() {
        let t = Arc::new(TestAndSet::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || t.test_and_set())
            })
            .collect();
        let wins = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|&w| w)
            .count();
        assert_eq!(wins, 1);
        assert!(t.is_set());
    }

    #[test]
    fn fetch_add_no_lost_updates() {
        let f = Arc::new(FetchAdd::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let f = Arc::clone(&f);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        f.fetch_add(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(f.load(), 8000);
    }

    #[test]
    fn llsc_detects_intervening_store() {
        let c = LlScCell::new(1);
        let a = c.load_linked();
        let b = c.load_linked();
        assert!(c.store_conditional(&a, 2));
        // b's link is broken by a's successful store.
        assert!(!c.store_conditional(&b, 3));
        assert_eq!(c.load_linked().value(), 2);
    }

    #[test]
    fn llsc_is_aba_immune() {
        let c = LlScCell::new(5);
        let link = c.load_linked();
        // Value goes 5 -> 7 -> 5: a raw CAS would succeed, LL/SC must not.
        let l2 = c.load_linked();
        assert!(c.store_conditional(&l2, 7));
        let l3 = c.load_linked();
        assert!(c.store_conditional(&l3, 5));
        assert_eq!(c.load_linked().value(), 5);
        assert!(!c.store_conditional(&link, 9), "ABA must be detected");
    }

    #[test]
    fn llsc_concurrent_counter() {
        let c = Arc::new(LlScCell::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        loop {
                            let link = c.load_linked();
                            if c.store_conditional(&link, link.value() + 1) {
                                break;
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.load_linked().value(), 2000);
    }
}
