//! The efficiency/scalability tradeoff, measured (experiment E7).
//!
//! The paper's premise: shared memory is efficient but does not scale;
//! message passing scales but is slow. We model the non-scaling memory by
//! charging each consensus-object invocation `beta × cluster_size`
//! virtual ticks against a ~1000-tick network delay, and sweep the number
//! of clusters `m` for a fixed `n = 12`.
//!
//! ```text
//! cargo run --release --example efficiency_tradeoff
//! ```

use one_for_all::metrics::Summary;
use one_for_all::prelude::*;
use one_for_all::sim::{CostModel, DelayModel};

fn main() {
    const N: usize = 12;
    const TRIALS: u64 = 12;
    println!("n = {N}, Alg 2 (local coin), split proposals, delay U[500,1500] ticks");
    println!("sm-op cost = beta x cluster size\n");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "beta", "m=1", "m=2", "m=3", "m=6", "m=12"
    );
    for beta in [1u64, 20, 100, 400, 1600] {
        print!("{beta:>8}");
        for m in [1usize, 2, 3, 6, 12] {
            let partition = Partition::even(N, m);
            let sm_cost = beta * (N / m) as u64;
            let mut latencies = Vec::new();
            for seed in 0..TRIALS {
                let out = SimBuilder::new(partition.clone(), Algorithm::LocalCoin)
                    .proposals_split(N / 2)
                    .costs(CostModel::new().with_sm_op_cost(sm_cost))
                    .delay(DelayModel::Uniform { lo: 500, hi: 1500 })
                    .seed(seed)
                    .run();
                if out.all_correct_decided {
                    latencies.push(out.latest_decision_time.ticks() as f64);
                }
            }
            print!(" {:>10.0}", Summary::of(latencies).mean);
        }
        println!();
    }
    println!("\nreading the table: with cheap memory (small beta) one big cluster");
    println!("wins outright (one round, estimates pre-agreed); as the per-sharer");
    println!("cost grows, the big cluster's advantage erodes — the tradeoff the");
    println!("paper argues qualitatively, measured in virtual time.");
}
