//! The efficiency/scalability tradeoff, measured (experiment E7).
//!
//! The paper's premise: shared memory is efficient but does not scale;
//! message passing scales but is slow. We model the non-scaling memory by
//! charging each consensus-object invocation `beta × cluster_size`
//! virtual ticks against a ~1000-tick network delay, and sweep the number
//! of clusters `m` for a fixed `n = 12` — one [`Sweep`] per `beta`, with
//! the cluster count as the parameter grid, fanned out over worker
//! threads.
//!
//! ```text
//! cargo run --release --example efficiency_tradeoff
//! ```

use one_for_all::metrics::Summary;
use one_for_all::prelude::*;
use one_for_all::scenario::{CostModel, DelayModel};

fn main() {
    const N: usize = 12;
    const TRIALS: u64 = 12;
    println!("n = {N}, Alg 2 (local coin), split proposals, delay U[500,1500] ticks");
    println!("sm-op cost = beta x cluster size\n");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "beta", "m=1", "m=2", "m=3", "m=6", "m=12"
    );
    let ms = [1usize, 2, 3, 6, 12];
    for beta in [1u64, 20, 100, 400, 1600] {
        let mut sweep = Sweep::new(
            Scenario::new(Partition::even(N, 1), Algorithm::LocalCoin)
                .proposals_split(N / 2)
                .delay(DelayModel::Uniform { lo: 500, hi: 1500 }),
        )
        .seeds(0..TRIALS)
        .workers(4);
        for m in ms {
            let sm_cost = beta * (N / m) as u64;
            sweep = sweep.vary(format!("m={m}"), move |sc| Scenario {
                partition: Partition::even(N, m),
                ..sc.costs(CostModel::new().with_sm_op_cost(sm_cost))
            });
        }
        let report = sweep.run(&Sim);
        print!("{beta:>8}");
        for m in ms {
            // Mean over terminating runs only — a capped run's partial
            // clock is not a decision latency.
            let mean = Summary::of(
                report
                    .variant(&format!("m={m}"))
                    .outcomes()
                    .filter(|o| o.all_correct_decided)
                    .map(|o| o.latest_decision_time.ticks() as f64),
            )
            .mean;
            print!(" {mean:>10.0}");
        }
        println!();
    }
    println!("\nreading the table: with cheap memory (small beta) one big cluster");
    println!("wins outright (one round, estimates pre-agreed); as the per-sharer");
    println!("cost grows, the big cluster's advantage erodes — the tradeoff the");
    println!("paper argues qualitatively, measured in virtual time.");
}
