//! An annotated, fully deterministic execution trace.
//!
//! Runs the common-coin algorithm on a 2-cluster, 3-process system with a
//! fixed seed, prints every simulator event (sends, deliveries,
//! intra-cluster consensus invocations, coins, decisions), and shows that
//! re-running with the same seed reproduces the execution bit-for-bit.
//!
//! ```text
//! cargo run --example trace_walkthrough
//! ```

use one_for_all::prelude::*;

fn main() {
    let partition = Partition::from_sizes(&[2, 1]).expect("valid sizes");
    println!("partition: {partition}  (P[1] shares memory; p3 is alone)\n");

    let run = |seed: u64, keep: bool| {
        let mut sc = Scenario::new(partition.clone(), Algorithm::CommonCoin)
            .proposals_split(1) // p1 proposes 1, p2 & p3 propose 0
            .seed(seed);
        if keep {
            sc = sc.keep_trace();
        }
        Sim.run(&sc)
    };

    let outcome = run(5, true);
    for event in outcome.events.as_deref().unwrap_or(&[]) {
        println!("{event}");
    }

    println!("\ndecisions:");
    for (i, d) in outcome.decisions.iter().enumerate() {
        println!(
            "  p{}: {}",
            i + 1,
            d.map(|d| d.to_string()).unwrap_or_default()
        );
    }

    // Determinism: same seed, same trace hash; different seed, different.
    let again = run(5, false);
    assert_eq!(outcome.trace_hash, again.trace_hash);
    let other = run(6, false);
    println!(
        "\ntrace hash seed=5: {:016x} (replayed identically)",
        outcome.trace_hash.unwrap()
    );
    println!(
        "trace hash seed=6: {:016x} (a different schedule)",
        other.trace_hash.unwrap()
    );
    assert_ne!(outcome.trace_hash, other.trace_hash);
}
