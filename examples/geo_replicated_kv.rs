//! A geo-replicated key-value store on hybrid-model consensus.
//!
//! Deployment story (the one the paper's introduction motivates): three
//! datacenters, each a multicore box whose cores share memory — a cluster
//! — connected by an asynchronous WAN. Commands are totally ordered by
//! repeated multivalued consensus (built from the paper's binary
//! algorithms) and applied to a deterministic KV state machine. Then one
//! whole datacenter plus part of another crashes — and the log keeps
//! committing.
//!
//! ```text
//! cargo run --example geo_replicated_kv
//! ```

use one_for_all::prelude::*;
use one_for_all::smr::{run_replicated_kv, Command};

fn main() {
    // 9 replicas in 3 "datacenters" of 3 cores each; DC-1 holds no
    // majority, so we use even thirds and rely on two surviving DCs.
    let partition = Partition::even(9, 3);
    println!("datacenters: {partition}\n");

    // Each replica wants to commit its own stream of commands.
    let commands: Vec<Vec<Command>> = (0..9)
        .map(|i| {
            vec![
                Command::put(&format!("sensor-{i}"), &format!("{}", 20 + i)),
                Command::put("leader", &format!("replica-{i}")),
                Command::del(&format!("sensor-{}", (i + 1) % 9)),
            ]
        })
        .collect();

    // Crash all of DC-3 (p7..p9) and one core of DC-2 mid-run.
    let crashes = CrashPlan::new()
        .crash_at_start(ProcessId(6))
        .crash_at_start(ProcessId(7))
        .crash_at_start(ProcessId(8))
        .crash_at_step(ProcessId(5), 200);

    let slots = 5;
    let (reports, outcome) = run_replicated_kv(
        partition,
        commands,
        slots,
        Algorithm::CommonCoin,
        2024,
        crashes,
    );

    println!("simulator processed {} events", outcome.events_processed);
    let mut reference: Option<&one_for_all::smr::ReplicaReport> = None;
    for (i, report) in reports.iter().enumerate() {
        match report {
            Some(r) => {
                println!("replica p{}: digest {:016x}", i + 1, r.digest);
                if let Some(first) = reference {
                    assert_eq!(first.log, r.log, "logs must be identical");
                    assert_eq!(first.digest, r.digest);
                } else {
                    reference = Some(r);
                }
            }
            None => println!("replica p{}: crashed / did not finish", i + 1),
        }
    }

    let r = reference.expect("survivors completed");
    println!("\ncommitted log ({} slots):", slots);
    for (j, (cmd, proposer)) in r.log.iter().zip(r.proposers.iter()).enumerate() {
        println!("  slot {j}: {cmd}   (proposed by {proposer})");
    }
    println!("\nfinal state ({} keys):", r.state.len());
    if let Some(v) = r.state.get("leader") {
        println!("  leader = {v}");
    }
    println!("\nall surviving replicas hold identical logs and states — SMR on");
    println!("hybrid consensus survived a full datacenter outage plus one more crash.");
}
