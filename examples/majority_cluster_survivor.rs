//! The paper's headline fault-tolerance scenario, on **real threads**.
//!
//! Figure 1 (right) gives cluster `P[2] = {p2, p3, p4, p5}` a strict
//! majority of the 7 processes. The paper (§I, §V): consensus is solvable
//! in every failure pattern that spares *one* process of `P[2]` — here we
//! crash 6 of 7 processes and watch the lone survivor decide, something no
//! pure message-passing protocol can do (it would need 4 correct
//! processes).
//!
//! ```text
//! cargo run --example majority_cluster_survivor
//! ```

use one_for_all::prelude::*;
use one_for_all::topology::predicate;

fn main() {
    let partition = Partition::fig1_right();
    println!("partition: {partition}");
    println!(
        "fault-tolerance frontier: {:?}\n",
        predicate::frontier(&partition)
    );

    // Crash everyone except p3 (index 2) — 6 of 7 processes.
    let survivor = ProcessId(2);
    let mut plan = CrashPlan::new();
    for i in 0..7 {
        if ProcessId(i) != survivor {
            plan = plan.crash_at_start(ProcessId(i));
        }
    }
    // One scenario value, executed on the real-thread backend.
    let outcome = Threads.run(
        &Scenario::new(partition.clone(), Algorithm::CommonCoin)
            .proposals_split(4)
            .crashes(plan)
            .seed(7),
    );

    println!("crashed: {} processes", outcome.crashed.len());
    for (i, decision) in outcome.decisions.iter().enumerate() {
        match decision {
            Some(d) => println!("  p{}: {d}", i + 1),
            None => println!("  p{}: crashed", i + 1),
        }
    }
    assert!(outcome.all_correct_decided, "the survivor must decide");
    assert_eq!(outcome.deciders(), 1);
    println!(
        "\np3 decided alone in {:?} — \"one for all and all for one\":",
        outcome.latest_decision
    );
    println!("its single message counts for the whole majority cluster P[2].");

    // Contrast: the classical message-passing bound for n=7 is 3 crashes.
    let f = predicate::frontier(&partition);
    println!(
        "\npure message passing tolerates {} crashes; the hybrid model here tolerated {}.",
        f.message_passing_bound,
        outcome.crashed.len()
    );
}
