//! Quickstart: run both of the paper's algorithms on the Figure 1
//! decompositions and print what happened.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use one_for_all::prelude::*;

fn main() {
    println!("One for All and All for One — hybrid-model consensus quickstart\n");

    for (name, partition) in [
        ("Figure 1 (left) ", Partition::fig1_left()),
        ("Figure 1 (right)", Partition::fig1_right()),
    ] {
        println!("{name}: {partition}");
        for algorithm in Algorithm::ALL {
            // p1..p3 propose 1, p4..p7 propose 0 — a contested input.
            let outcome = Sim.run(
                &Scenario::new(partition.clone(), algorithm)
                    .proposals_split(3)
                    .seed(42),
            );
            let value = outcome.decided_value.expect("all correct processes decide");
            println!(
                "  {algorithm:<22} decided {} | max round {} | {} messages | {} virtual ticks",
                value,
                outcome.max_decision_round,
                outcome.counters.messages_sent,
                outcome.latest_decision_time.ticks(),
            );
            assert!(outcome.agreement_holds());
        }
        println!();
    }

    println!("Every process of every run decided the same proposed value —");
    println!("agreement and validity, under asynchrony, with randomized termination.");
}
