//! # `one-for-all` — scalable consensus in a hybrid communication model
//!
//! A complete Rust reproduction of Raynal & Cao, *"One for All and All for
//! One: Scalable Consensus in a Hybrid Communication Model"* (ICDCS 2019):
//! randomized binary consensus for systems whose processes are partitioned
//! into clusters — shared memory (with `compare&swap`) inside each
//! cluster, asynchronous reliable messages between everyone.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`consensus`] | `ofa-core` | Algorithms 1–3 (blocking + resumable [`consensus::sm`] machines), baselines, invariants |
//! | [`topology`] | `ofa-topology` | partitions, predicate, m&m graphs |
//! | [`sharedmem`] | `ofa-sharedmem` | registers, CAS consensus objects |
//! | [`coins`] | `ofa-coins` | local/common/adversarial coins |
//! | [`scenario`] | `ofa-scenario` | `Scenario` values, `Backend` trait, unified `Outcome`, `Sweep`, [`scenario::Engine`] knob |
//! | [`sim`] | `ofa-sim` | deterministic backend (`Sim`): thread-conductor + event-driven engines, explorer |
//! | [`explore`] | `ofa-explore` | adversarial schedule explorer + regression corpus |
//! | [`runtime`] | `ofa-runtime` | real-thread backend (`Threads`) |
//! | [`mm`] | `ofa-mm` | the m&m comparison model |
//! | [`smr`] | `ofa-smr` | multivalued consensus, replicated KV |
//! | [`metrics`] | `ofa-metrics` | counters, statistics, tables |
//!
//! # Sixty seconds to a decision
//!
//! A [`scenario::Scenario`] describes one execution — partition,
//! algorithm, proposals, seed, failure pattern — as a plain (serializable)
//! value; any [`scenario::Backend`] runs it and returns the same
//! [`scenario::Outcome`] shape:
//!
//! ```
//! use one_for_all::prelude::*;
//!
//! // Figure 1 (right): {p1} {p2,p3,p4,p5} {p6,p7}.
//! let scenario = Scenario::new(Partition::fig1_right(), Algorithm::CommonCoin)
//!     .proposals_split(3) // p1..p3 propose 1, the rest 0
//!     .seed(42);
//! // Deterministic virtual-time simulation…
//! let outcome = Sim.run(&scenario);
//! assert!(outcome.all_correct_decided);
//! assert!(outcome.agreement_holds());
//! // …and the *same value* on real threads.
//! let real = Threads.run(&scenario);
//! assert!(real.agreement_holds());
//! println!("decided {:?} in <= {} rounds", outcome.decided_value, outcome.max_decision_round);
//! ```
//!
//! Parameter studies go through [`scenario::Sweep`]
//! (`Scenario × seeds × grid → outcomes + aggregate stats`). See the
//! `examples/` directory for the headline fault-tolerance scenario, a
//! geo-replicated key-value store, the efficiency/scalability tradeoff
//! sweep, and an annotated execution trace.

#![warn(missing_docs)]

pub use ofa_coins as coins;
pub use ofa_core as consensus;
pub use ofa_explore as explore;
pub use ofa_metrics as metrics;
pub use ofa_mm as mm;
pub use ofa_runtime as runtime;
pub use ofa_scenario as scenario;
pub use ofa_sharedmem as sharedmem;
pub use ofa_sim as sim;
pub use ofa_smr as smr;
pub use ofa_topology as topology;

/// Most-used items in one import.
pub mod prelude {
    pub use ofa_core::{Algorithm, Bit, Decision, Halt, ProtocolConfig};
    pub use ofa_runtime::Threads;
    pub use ofa_scenario::{
        Backend, ChurnPlan, CoinSpec, CrashPlan, CrashTrigger, Engine, NetworkModel, Outcome,
        PoissonChurn, Scenario, Sweep,
    };
    pub use ofa_sim::Sim;
    pub use ofa_topology::{ClusterId, Partition, ProcessId, ProcessSet};
}
