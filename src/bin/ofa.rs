//! `ofa` — run one hybrid-model consensus execution from the command line.
//!
//! ```text
//! ofa --sizes 1,4,2 --algorithm cc --ones 3 --seed 42
//! ofa --sizes 3,2,2 --algorithm lc --crash p1@0 --crash p6@12 --trace
//! ofa --sizes 2,2 --runtime            # real threads instead of the simulator
//! ofa --help
//! ```

use one_for_all::prelude::*;
use std::process::exit;

const HELP: &str = "\
ofa — run one hybrid-model consensus execution

USAGE:
    ofa [OPTIONS]

OPTIONS:
    --sizes a,b,c      cluster sizes, e.g. 1,4,2 (default: 1,4,2 = Fig.1 right)
    --algorithm lc|cc  local-coin (Alg 2) or common-coin (Alg 3) [default: cc]
    --ones K           first K processes propose 1, the rest 0 [default: n/2]
    --seed S           randomness seed [default: 0]
    --crash pI@K       crash process I (1-based) at env-call K (repeatable;
                       K=0 crashes before any step)
    --max-rounds R     round budget [default: 512]
    --trace            print the full event trace (simulator only)
    --runtime          execute on real threads instead of the simulator
    --help             show this message
";

struct Options {
    sizes: Vec<usize>,
    algorithm: Algorithm,
    ones: Option<usize>,
    seed: u64,
    crashes: Vec<(usize, u64)>,
    max_rounds: u64,
    trace: bool,
    runtime: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        sizes: vec![1, 4, 2],
        algorithm: Algorithm::CommonCoin,
        ones: None,
        seed: 0,
        crashes: Vec::new(),
        max_rounds: 512,
        trace: false,
        runtime: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print!("{HELP}");
                exit(0);
            }
            "--sizes" => {
                opts.sizes = value(&mut i)?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| e.to_string()))
                    .collect::<Result<_, _>>()?;
            }
            "--algorithm" => {
                opts.algorithm = match value(&mut i)?.as_str() {
                    "lc" | "local" => Algorithm::LocalCoin,
                    "cc" | "common" => Algorithm::CommonCoin,
                    other => return Err(format!("unknown algorithm {other:?} (use lc|cc)")),
                };
            }
            "--ones" => {
                opts.ones = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?,
                )
            }
            "--seed" => {
                opts.seed = value(&mut i)?
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?
            }
            "--max-rounds" => {
                opts.max_rounds = value(&mut i)?
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?
            }
            "--crash" => {
                let spec = value(&mut i)?;
                let (proc_part, step_part) = spec
                    .split_once('@')
                    .ok_or_else(|| format!("bad crash spec {spec:?}, expected pI@K"))?;
                let pid: usize = proc_part
                    .trim_start_matches('p')
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?;
                if pid == 0 {
                    return Err("process numbering is 1-based".into());
                }
                let step: u64 = step_part
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?;
                opts.crashes.push((pid - 1, step));
            }
            "--trace" => opts.trace = true,
            "--runtime" => opts.runtime = true,
            other => return Err(format!("unknown option {other:?} (try --help)")),
        }
        i += 1;
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            exit(2);
        }
    };
    let partition = match Partition::from_sizes(&opts.sizes) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: invalid --sizes: {e}");
            exit(2);
        }
    };
    let n = partition.n();
    let ones = opts.ones.unwrap_or(n / 2).min(n);
    println!("partition: {partition}");
    println!(
        "algorithm: {} | proposals: {ones}x1 + {}x0 | seed {}",
        opts.algorithm,
        n - ones,
        opts.seed
    );
    for (p, k) in &opts.crashes {
        println!("crash: p{} at step {k}", p + 1);
    }

    if opts.runtime {
        let mut b = RuntimeBuilder::new(partition, opts.algorithm)
            .proposals_split(ones)
            .config(ProtocolConfig::paper().with_max_rounds(opts.max_rounds))
            .seed(opts.seed);
        for (p, k) in &opts.crashes {
            b = b.crash_at_step(ProcessId(*p), *k);
        }
        let out = b.run();
        println!("\n— real-thread run: {:?} —", out.elapsed);
        for (i, d) in out.decisions.iter().enumerate() {
            match d {
                Some(d) => println!("  p{}: {d}", i + 1),
                None => println!("  p{}: {}", i + 1, halt_text(out.halts[i])),
            }
        }
        summarize(out.agreement_holds(), out.deciders(), n);
    } else {
        let mut plan = CrashPlan::new();
        for (p, k) in &opts.crashes {
            plan = plan.crash_at_step(ProcessId(*p), *k);
        }
        let mut b = SimBuilder::new(partition, opts.algorithm)
            .proposals_split(ones)
            .config(ProtocolConfig::paper().with_max_rounds(opts.max_rounds))
            .crashes(plan)
            .seed(opts.seed);
        if opts.trace {
            b = b.keep_trace();
        }
        let out = b.run();
        if let Some(events) = &out.events {
            for e in events {
                println!("{e}");
            }
            println!();
        }
        println!(
            "— simulated run: {} events, end {} —",
            out.events_processed, out.end_time
        );
        for (i, d) in out.decisions.iter().enumerate() {
            match d {
                Some(d) => println!("  p{}: {d}", i + 1),
                None => println!("  p{}: {}", i + 1, halt_text(out.halts[i])),
            }
        }
        println!(
            "  messages {} | cluster proposes {} | trace hash {:016x}",
            out.counters.messages_sent, out.counters.cluster_proposes, out.trace_hash
        );
        summarize(out.agreement_holds(), out.deciders(), n);
    }
}

fn halt_text(h: Option<Halt>) -> &'static str {
    match h {
        Some(Halt::Crashed) => "crashed",
        Some(Halt::Stopped) => "stopped (undecided)",
        None => "unknown",
    }
}

fn summarize(agreement: bool, deciders: usize, n: usize) {
    println!(
        "\nagreement: {} | deciders: {deciders}/{n}",
        if agreement { "holds" } else { "VIOLATED" }
    );
    if !agreement {
        exit(1);
    }
}
