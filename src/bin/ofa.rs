//! `ofa` — run one hybrid-model consensus execution from the command line.
//!
//! ```text
//! ofa --sizes 1,4,2 --algorithm cc --ones 3 --seed 42
//! ofa --sizes 3,2,2 --algorithm lc --crash p1@0 --crash p6@12 --trace
//! ofa --sizes 2,2 --crash p3@r2        # crash p3 when it enters round 2
//! ofa --sizes 2,2 --crash p1@t1500     # crash p1 at virtual time 1500
//! ofa --sizes 2,2 --runtime            # real threads instead of the simulator
//! ofa --sizes 1,4,2 --engine threads    # pin the reference thread conductor
//! ofa --sizes 40,40,40 --engine par     # cluster-sharded parallel engine
//! ofa --sizes 10,10,10 --serve poisson:200 --clients 64   # client traffic
//! ofa --sizes 1,4,2 --json             # unified Outcome as JSON
//! ofa --checkpoint-at 5000 --checkpoint-file run.snap.json   # pause, exit 3
//! ofa --resume run.snap.json                                 # continue
//! ofa --resume run.snap.json --diverge-crash p2@t9000        # what-if tail
//! ofa --budget-secs 60 --checkpoint-file run.snap.json  # time-budgeted leg
//! ofa explore --seed 1 --budget-secs 30   # hunt for worst-case schedules
//! ofa --help
//! ```
//!
//! The CLI builds one [`Scenario`] value and executes it on the selected
//! [`Backend`] — the same description runs on either substrate. With the
//! checkpoint flags the run becomes *resumable*: a paused leg writes a
//! [`Snapshot`] JSON file and exits with code 3; `--resume` continues it
//! bit-for-bit (same decisions, counters, end time, and trace hash as a
//! straight-through run), and the `--diverge-*` flags mutate the tail
//! before resuming.

use one_for_all::consensus::{ArrivalProcess, TrafficSpec};
use one_for_all::explore::{
    write_corpus, CorpusFilter, ExploreConfig, Explorer, Fitness, Limits, SearchState,
    EVENTS_PER_SEC,
};
use one_for_all::prelude::*;
use one_for_all::scenario::{DivergeSpec, Snapshot, VirtualTime};
use one_for_all::sim::RunOutcome;
use std::process::exit;
use std::time::{Duration, Instant};

const HELP: &str = "\
ofa — run one hybrid-model consensus execution

USAGE:
    ofa [OPTIONS]

OPTIONS:
    --sizes a,b,c      cluster sizes, e.g. 1,4,2 (default: 1,4,2 = Fig.1 right)
    --algorithm lc|cc  local-coin (Alg 2) or common-coin (Alg 3) [default: cc]
    --ones K           first K processes propose 1, the rest 0 [default: n/2]
    --seed S           randomness seed [default: 0]
    --crash pI@K       crash process I (1-based) at env-call K (repeatable;
                       K=0 crashes before any step)
    --crash pI@rR      crash process I when it enters round R
    --crash pI@tT      crash process I at virtual time T
    --loss P           drop each message with probability P ppm (parts per
                       million, 0..=1000000) — deterministic per (seed,
                       link, message) [default: 0]
    --dup P            duplicate each delivered message with probability P
                       ppm; the copy arrives after an extra link delay
                       [default: 0]
    --churn pI@tT+rR   process I leaves (crashes) at virtual time T and
                       rejoins at virtual time R with a fresh mailbox
                       (repeatable; omit +rR for a leave without rejoin)
    --churn-poisson PPM[:DOWN[:HORIZON]]
                       Poisson churn arrivals: every process not named by
                       --churn/--crash leaves at rate PPM per million
                       ticks and rejoins after an exponential downtime of
                       mean DOWN ticks (0 = leave forever) [default:
                       10000]; first leaves at/after HORIZON ticks are
                       discarded [default: 100000]. Arrivals are a pure
                       PRF of (seed, process) — identical on every
                       engine and across checkpoint resumes
    --max-rounds R     round budget [default: 512]
    --trace            print the full event trace (simulator only)
    --engine E         simulator process engine: event (single-threaded
                       event-driven state machines; scales to n >> 10^4),
                       par or par=N (cluster-sharded parallel event engine
                       on N workers, N omitted = one per core; identical
                       outcomes to event, bit for bit), or threads (the
                       reference conductor — pin this to reproduce
                       pre-flip runs) [default: event]
    --runtime          execute on real threads instead of the simulator
                       (--engine does not apply)
    --json             print the unified Outcome as JSON (suppresses the
                       human-readable report)
    --help             show this message

SERVING TRAFFIC (simulator only; replaces the single-shot consensus body
with a traffic-driven replicated log):
    --serve ARRIVAL    clients submit commands per ARRIVAL, in ticks of
                       virtual time: periodic:P[:PHASE] (one command every
                       P ticks), poisson:MEAN_GAP (exponential gaps),
                       bursty:N:P[:PHASE] (N commands every P ticks), or
                       closed:LO:HI (closed loop — each client waits for
                       its commit, then thinks for LO..=HI ticks). Every
                       arrival is a pure function of (seed, client, k), so
                       any engine and worker count serves the identical
                       workload.
    --clients N        number of clients; client c submits to replica
                       c mod n [default: n]
    --slots N          log slots (consensus instances) to run [default: 8]
    --queue-cap N      bounded proposer queue depth — arrivals that find
                       it full are shed and counted [default: 64]
    --batch-max N      max commands batched into one proposal [default: 16]
    --batch-min N      min queued commands before a non-empty proposal;
                       below it the proposer passes (fill-or-timeout)
                       [default: 0]

CHECKPOINT / RESUME (simulator event engines only):
    --checkpoint-at T     pause at virtual time T: write the snapshot to
                          --checkpoint-file and exit with code 3
    --checkpoint-every T  leg length in virtual-time ticks for budgeted
                          runs [default: 5000]
    --checkpoint-file F   snapshot path [default: ofa.snapshot.json]
    --budget-secs S       wall-clock budget: run legs of --checkpoint-every
                          ticks until the budget expires, then write the
                          snapshot and exit 3; a finished run exits
                          normally. Resuming the snapshot continues the
                          run bit-for-bit.
    --resume F            resume from snapshot F (scenario flags are
                          ignored — the snapshot embeds the scenario;
                          --engine still switches the engine mid-run)
    --diverge-seed S      resume with a different delay seed for the tail
    --diverge-coin C      resume with a different common coin for the
                          tail: seeded|alternating
    --diverge-crash SPEC  add a crash to the tail (repeatable; pI@K,
                          pI@rR, or pI@tT like --crash)

SUBCOMMANDS:
    explore            adversarial schedule search (ofa explore --help)

EXIT CODES:
    0  run finished, agreement holds      2  usage / IO error
    1  run finished, agreement VIOLATED   3  paused at a checkpoint
";

const EXPLORE_HELP: &str = "\
ofa explore — guided search for worst-case schedules

Searches crash plans, churn plans, delay seeds, loss/duplication rates,
and common-coin overrides for the schedules that hurt the most: agreement
violations first, then stuck-but-correct processes, then rounds-to-
decide, then virtual-time stretch. The whole trajectory is a pure
function of --seed: candidates derive from a PRF of (seed, generation,
slot), evaluation results are collected by slot index, and the budget is
counted in simulated events — the same search replays bit-for-bit on any
machine and worker count.

USAGE:
    ofa explore [OPTIONS]

SEARCH:
    --seed S           explorer seed — the whole search replays from it
                       [default: 0]
    --budget-secs B    stop once B x 2,000,000 simulated events are spent
                       (checked at generation boundaries; deterministic,
                       unlike wall clock)
    --generations G    hard cap on generations [default if no budget: 32]
    --population P     candidates per generation [default: 16]
    --workers W        evaluation threads; 0 = one per core [default: 0]

BASE SCHEDULE (the unmutated starting point):
    --sizes a,b,c      cluster sizes [default: 1,4,2]
    --algorithm lc|cc  consensus algorithm [default: cc]
    --ones K           first K processes propose 1 [default: n/2]
    --max-rounds R     round budget per run [default: 64]
    --loss P           starting loss rate, ppm [default: 0]
    --dup P            starting duplication rate, ppm [default: 0]

MUTATION LIMITS:
    --max-loss P       cap on mutated loss rates, ppm [default: 50000]
    --max-dup P        cap on mutated duplication rates, ppm [default: 10000]
    --max-poisson P    cap on mutated Poisson churn rates, ppm; 0 disables
                       the operator [default: 2000]
    --horizon T        virtual-time window for mutated crash/churn times
                       [default: 100000]

CORPUS (agreement violations always qualify):
    --min-rounds R     also record schedules reaching round R
    --min-undecided U  also record schedules leaving U correct processes
                       stuck
    --emit-corpus DIR  write qualifying schedules to DIR as JSON entries
                       (schedule + pinned outcome + provenance)

OUTPUT / RESUMABILITY:
    --log FILE         write the search log (one JSON record per
                       generation) — byte-identical across replays
    --state FILE       resumable search state: loaded if present, written
                       on a --wall-secs pause
    --wall-secs S      wall-clock safety stop for CI gates: pause at a
                       generation boundary after S seconds, save --state,
                       exit 3 (the trajectory prefix stays exact)
    --json             print the final summary as JSON

EXIT CODES:
    0  search finished, no violation found   2  usage / IO error
    1  search found an agreement VIOLATION   3  paused on --wall-secs
";

struct Options {
    sizes: Vec<usize>,
    algorithm: Algorithm,
    ones: Option<usize>,
    seed: u64,
    crashes: Vec<(usize, CrashWhen)>,
    loss_ppm: u32,
    dup_ppm: u32,
    churn: Vec<(usize, u64, Option<u64>)>,
    churn_poisson: Option<PoissonChurn>,
    max_rounds: u64,
    serve: Option<ArrivalProcess>,
    clients: u64,
    slots: u64,
    queue_cap: u32,
    batch_max: u32,
    batch_min: u32,
    trace: bool,
    engine: Option<Engine>,
    runtime: bool,
    json: bool,
    checkpoint_at: Option<u64>,
    checkpoint_every: u64,
    checkpoint_file: String,
    budget_secs: Option<u64>,
    resume: Option<String>,
    diverge_seed: Option<u64>,
    diverge_coin: Option<CoinSpec>,
    diverge_crashes: Vec<(usize, CrashWhen)>,
}

/// A parsed `--crash` / `--diverge-crash` trigger.
enum CrashWhen {
    Step(u64),
    Round(u64),
    Time(u64),
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        sizes: vec![1, 4, 2],
        algorithm: Algorithm::CommonCoin,
        ones: None,
        seed: 0,
        crashes: Vec::new(),
        loss_ppm: 0,
        dup_ppm: 0,
        churn: Vec::new(),
        churn_poisson: None,
        max_rounds: 512,
        serve: None,
        clients: 0,
        slots: 8,
        queue_cap: 64,
        batch_max: 16,
        batch_min: 0,
        trace: false,
        engine: None,
        runtime: false,
        json: false,
        checkpoint_at: None,
        checkpoint_every: 5_000,
        checkpoint_file: "ofa.snapshot.json".to_string(),
        budget_secs: None,
        resume: None,
        diverge_seed: None,
        diverge_coin: None,
        diverge_crashes: Vec::new(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print!("{HELP}");
                exit(0);
            }
            "--sizes" => {
                opts.sizes = value(&mut i)?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| e.to_string()))
                    .collect::<Result<_, _>>()?;
            }
            "--algorithm" => {
                opts.algorithm = match value(&mut i)?.as_str() {
                    "lc" | "local" => Algorithm::LocalCoin,
                    "cc" | "common" => Algorithm::CommonCoin,
                    other => return Err(format!("unknown algorithm {other:?} (use lc|cc)")),
                };
            }
            "--ones" => {
                opts.ones = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?,
                )
            }
            "--seed" => {
                opts.seed = value(&mut i)?
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?
            }
            "--max-rounds" => {
                opts.max_rounds = value(&mut i)?
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?
            }
            "--crash" => {
                let spec = value(&mut i)?;
                opts.crashes.push(parse_crash(&spec)?);
            }
            "--loss" => {
                opts.loss_ppm = parse_ppm(&value(&mut i)?, "--loss")?;
            }
            "--dup" => {
                opts.dup_ppm = parse_ppm(&value(&mut i)?, "--dup")?;
            }
            "--churn" => {
                let spec = value(&mut i)?;
                opts.churn.push(parse_churn(&spec)?);
            }
            "--churn-poisson" => {
                opts.churn_poisson = Some(parse_churn_poisson(&value(&mut i)?)?);
            }
            "--serve" => {
                opts.serve = Some(parse_arrival(&value(&mut i)?)?);
            }
            "--clients" => {
                opts.clients = value(&mut i)?
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?
            }
            "--slots" => {
                opts.slots = value(&mut i)?
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?
            }
            "--queue-cap" => {
                opts.queue_cap = value(&mut i)?
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?
            }
            "--batch-max" => {
                opts.batch_max = value(&mut i)?
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?
            }
            "--batch-min" => {
                opts.batch_min = value(&mut i)?
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?
            }
            "--trace" => opts.trace = true,
            "--engine" => {
                opts.engine = Some(match value(&mut i)?.as_str() {
                    "threads" => Engine::Threads,
                    "event" | "event-driven" => Engine::EventDriven,
                    "par" | "parallel" => Engine::parallel(),
                    spec if spec.starts_with("par=") => {
                        let workers = spec["par=".len()..]
                            .parse::<u64>()
                            .map_err(|e| format!("bad worker count in {spec:?}: {e}"))?;
                        Engine::ParallelEvent { workers }
                    }
                    other => {
                        return Err(format!(
                            "unknown engine {other:?} (use threads|event|par|par=N)"
                        ))
                    }
                });
            }
            "--runtime" => opts.runtime = true,
            "--json" => opts.json = true,
            "--checkpoint-at" => {
                opts.checkpoint_at = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?,
                )
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = value(&mut i)?
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?;
                if opts.checkpoint_every == 0 {
                    return Err("--checkpoint-every must be positive".into());
                }
            }
            "--checkpoint-file" => opts.checkpoint_file = value(&mut i)?,
            "--budget-secs" => {
                opts.budget_secs = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?,
                )
            }
            "--resume" => opts.resume = Some(value(&mut i)?),
            "--diverge-seed" => {
                opts.diverge_seed = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?,
                )
            }
            "--diverge-coin" => {
                opts.diverge_coin = Some(match value(&mut i)?.as_str() {
                    "seeded" => CoinSpec::Seeded,
                    "alternating" => CoinSpec::Alternating,
                    other => {
                        return Err(format!("unknown coin {other:?} (use seeded|alternating)"))
                    }
                });
            }
            "--diverge-crash" => {
                let spec = value(&mut i)?;
                opts.diverge_crashes.push(parse_crash(&spec)?);
            }
            other => return Err(format!("unknown option {other:?} (try --help)")),
        }
        i += 1;
    }
    let checkpointing = opts.checkpoint_at.is_some() || opts.budget_secs.is_some();
    if (checkpointing || opts.resume.is_some()) && opts.runtime {
        return Err("checkpoint/resume runs on the simulator, not --runtime".into());
    }
    if opts.runtime
        && (opts.loss_ppm > 0
            || opts.dup_ppm > 0
            || !opts.churn.is_empty()
            || opts.churn_poisson.is_some())
    {
        return Err("--loss/--dup/--churn model the simulated network, not --runtime".into());
    }
    if opts.serve.is_some() && opts.runtime {
        return Err("--serve needs the simulator's virtual clock, not --runtime".into());
    }
    if opts.serve.is_none()
        && (opts.clients > 0
            || opts.slots != 8
            || opts.queue_cap != 64
            || opts.batch_max != 16
            || opts.batch_min != 0)
    {
        return Err("--clients/--slots/--queue-cap/--batch-* require --serve".into());
    }
    if (checkpointing || opts.resume.is_some()) && opts.trace {
        return Err("checkpointing cannot retain an ordered trace (drop --trace)".into());
    }
    if checkpointing && matches!(opts.engine, Some(Engine::Threads)) {
        return Err("the thread engine cannot checkpoint; use --engine event or par".into());
    }
    let diverging = opts.diverge_seed.is_some()
        || opts.diverge_coin.is_some()
        || !opts.diverge_crashes.is_empty();
    if diverging && opts.resume.is_none() {
        return Err("--diverge-* flags require --resume".into());
    }
    Ok(opts)
}

/// Parses `pI@K` (step trigger), `pI@rR` (round trigger), or `pI@tT`
/// (virtual-time trigger) into a 0-based process index plus trigger.
fn parse_crash(spec: &str) -> Result<(usize, CrashWhen), String> {
    let (proc_part, when_part) = spec
        .split_once('@')
        .ok_or_else(|| format!("bad crash spec {spec:?}, expected pI@K, pI@rR, or pI@tT"))?;
    let pid: usize = proc_part
        .trim_start_matches('p')
        .parse()
        .map_err(|e: std::num::ParseIntError| e.to_string())?;
    if pid == 0 {
        return Err("process numbering is 1-based".into());
    }
    let when = if let Some(round_part) = when_part.strip_prefix('r') {
        let round: u64 = round_part
            .parse()
            .map_err(|e: std::num::ParseIntError| e.to_string())?;
        CrashWhen::Round(round)
    } else if let Some(time_part) = when_part.strip_prefix('t') {
        let at: u64 = time_part
            .parse()
            .map_err(|e: std::num::ParseIntError| e.to_string())?;
        CrashWhen::Time(at)
    } else {
        let step: u64 = when_part
            .parse()
            .map_err(|e: std::num::ParseIntError| e.to_string())?;
        CrashWhen::Step(step)
    };
    Ok((pid - 1, when))
}

/// Parses a `--serve` arrival spec: `periodic:P[:PHASE]`,
/// `poisson:MEAN_GAP`, `bursty:N:P[:PHASE]`, or `closed:LO:HI`.
fn parse_arrival(spec: &str) -> Result<ArrivalProcess, String> {
    let num = |s: &str| {
        s.parse::<u64>()
            .map_err(|e| format!("bad number {s:?} in --serve {spec:?}: {e}"))
    };
    let parts: Vec<&str> = spec.split(':').collect();
    match parts.as_slice() {
        ["periodic", p] => Ok(ArrivalProcess::Periodic {
            period: num(p)?,
            phase: 0,
        }),
        ["periodic", p, ph] => Ok(ArrivalProcess::Periodic {
            period: num(p)?,
            phase: num(ph)?,
        }),
        ["poisson", gap] => Ok(ArrivalProcess::Poisson {
            mean_gap: num(gap)?,
        }),
        ["bursty", b, p] => Ok(ArrivalProcess::Bursty {
            burst: num(b)?,
            period: num(p)?,
            phase: 0,
        }),
        ["bursty", b, p, ph] => Ok(ArrivalProcess::Bursty {
            burst: num(b)?,
            period: num(p)?,
            phase: num(ph)?,
        }),
        ["closed", lo, hi] => Ok(ArrivalProcess::ClosedLoop {
            think_lo: num(lo)?,
            think_hi: num(hi)?,
        }),
        _ => Err(format!(
            "bad --serve spec {spec:?} (use periodic:P[:PHASE], poisson:MEAN_GAP, \
             bursty:N:P[:PHASE], or closed:LO:HI)"
        )),
    }
}

/// Parses a parts-per-million rate (`0..=1_000_000`).
fn parse_ppm(raw: &str, flag: &str) -> Result<u32, String> {
    let ppm: u32 = raw
        .parse()
        .map_err(|e: std::num::ParseIntError| format!("bad {flag} value {raw:?}: {e}"))?;
    if ppm > 1_000_000 {
        return Err(format!("{flag} is parts per million (max 1000000)"));
    }
    Ok(ppm)
}

/// Parses `pI@tT+rR` (leave at time T, rejoin at time R) or `pI@tT`
/// (leave only) into a 0-based process index plus tick times.
fn parse_churn(spec: &str) -> Result<(usize, u64, Option<u64>), String> {
    let bad = || format!("bad churn spec {spec:?}, expected pI@tT+rR or pI@tT");
    let (proc_part, when_part) = spec.split_once('@').ok_or_else(bad)?;
    let pid: usize = proc_part
        .trim_start_matches('p')
        .parse()
        .map_err(|e: std::num::ParseIntError| e.to_string())?;
    if pid == 0 {
        return Err("process numbering is 1-based".into());
    }
    let when_part = when_part.strip_prefix('t').ok_or_else(bad)?;
    let (leave_part, rejoin_part) = match when_part.split_once('+') {
        Some((l, r)) => (l, Some(r.strip_prefix('r').ok_or_else(bad)?)),
        None => (when_part, None),
    };
    let leave: u64 = leave_part
        .parse()
        .map_err(|e: std::num::ParseIntError| e.to_string())?;
    let rejoin = rejoin_part
        .map(|r| r.parse::<u64>().map_err(|e| e.to_string()))
        .transpose()?;
    if let Some(r) = rejoin {
        if r <= leave {
            return Err(format!(
                "churn rejoin time {r} must be after leave time {leave}"
            ));
        }
    }
    Ok((pid - 1, leave, rejoin))
}

/// Parses a `--churn-poisson` spec: `PPM[:DOWN[:HORIZON]]`.
fn parse_churn_poisson(spec: &str) -> Result<PoissonChurn, String> {
    let num = |s: &str| {
        s.parse::<u64>()
            .map_err(|e| format!("bad number {s:?} in --churn-poisson {spec:?}: {e}"))
    };
    let parts: Vec<&str> = spec.split(':').collect();
    let (rate, down, horizon) = match parts.as_slice() {
        [rate] => (rate, None, None),
        [rate, down] => (rate, Some(down), None),
        [rate, down, horizon] => (rate, Some(down), Some(horizon)),
        _ => {
            return Err(format!(
                "bad --churn-poisson spec {spec:?} (use PPM[:DOWN[:HORIZON]])"
            ))
        }
    };
    let rate_ppm = parse_ppm(rate, "--churn-poisson")?;
    Ok(PoissonChurn {
        rate_ppm,
        mean_down_ticks: down
            .map(|s| num(s))
            .transpose()?
            .unwrap_or(PoissonChurn::DEFAULT_MEAN_DOWN),
        horizon_ticks: horizon
            .map(|s| num(s))
            .transpose()?
            .unwrap_or(PoissonChurn::DEFAULT_HORIZON),
    })
}

fn build_churn(entries: &[(usize, u64, Option<u64>)], poisson: Option<PoissonChurn>) -> ChurnPlan {
    let mut plan = ChurnPlan::new();
    for &(p, leave, rejoin) in entries {
        let leave = VirtualTime::from_ticks(leave);
        plan = match rejoin {
            Some(r) => plan.leave_rejoin(ProcessId(p), leave, VirtualTime::from_ticks(r)),
            None => plan.leave(ProcessId(p), leave),
        };
    }
    match poisson {
        Some(spec) => plan.poisson_spec(spec),
        None => plan,
    }
}

fn build_plan(entries: &[(usize, CrashWhen)]) -> CrashPlan {
    let mut plan = CrashPlan::new();
    for (p, when) in entries {
        plan = match when {
            CrashWhen::Step(k) => plan.crash_at_step(ProcessId(*p), *k),
            CrashWhen::Round(r) => plan.crash_at_round(ProcessId(*p), *r),
            CrashWhen::Time(t) => plan.crash_at_time(ProcessId(*p), VirtualTime::from_ticks(*t)),
        };
    }
    plan
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "explore") {
        explore_main(&args[1..]);
        return;
    }
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            exit(2);
        }
    };

    if let Some(path) = &opts.resume {
        run_resumed(&opts, path);
        return;
    }

    let partition = match Partition::from_sizes(&opts.sizes) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: invalid --sizes: {e}");
            exit(2);
        }
    };
    let n = partition.n();
    let ones = opts.ones.unwrap_or(n / 2).min(n);

    let mut scenario = Scenario::new(partition.clone(), opts.algorithm)
        .proposals_split(ones)
        .config(ProtocolConfig::paper().with_max_rounds(opts.max_rounds))
        .crashes(build_plan(&opts.crashes))
        .loss_ppm(opts.loss_ppm)
        .dup_ppm(opts.dup_ppm)
        .churn(build_churn(&opts.churn, opts.churn_poisson))
        .seed(opts.seed);
    if let Some(arrival) = opts.serve {
        scenario = scenario.replicated_log_traffic(
            opts.algorithm,
            opts.slots,
            TrafficSpec {
                arrival,
                clients: if opts.clients == 0 {
                    n as u64
                } else {
                    opts.clients
                },
                queue_cap: opts.queue_cap,
                batch_max: opts.batch_max,
                batch_min: opts.batch_min,
            },
        );
    }
    if let Some(engine) = opts.engine {
        scenario = scenario.engine(engine);
    }
    if opts.trace && !opts.runtime {
        scenario = scenario.keep_trace();
    }

    if !opts.json {
        println!("partition: {partition}");
        println!(
            "algorithm: {} | proposals: {ones}x1 + {}x0 | seed {}",
            opts.algorithm,
            n - ones,
            opts.seed
        );
        for (p, when) in &opts.crashes {
            match when {
                CrashWhen::Step(k) => println!("crash: p{} at step {k}", p + 1),
                CrashWhen::Round(r) => println!("crash: p{} at round {r}", p + 1),
                CrashWhen::Time(t) => println!("crash: p{} at time {t}", p + 1),
            }
        }
        if opts.loss_ppm > 0 || opts.dup_ppm > 0 {
            println!(
                "network: loss {} ppm | dup {} ppm",
                opts.loss_ppm, opts.dup_ppm
            );
        }
        for &(p, leave, rejoin) in &opts.churn {
            match rejoin {
                Some(r) => println!("churn: p{} leaves at t{leave}, rejoins at t{r}", p + 1),
                None => println!("churn: p{} leaves at t{leave}", p + 1),
            }
        }
        if let Some(spec) = &opts.churn_poisson {
            println!(
                "churn: poisson arrivals at {} ppm | mean downtime {} | horizon {}",
                spec.rate_ppm, spec.mean_down_ticks, spec.horizon_ticks
            );
        }
        if let Some(arrival) = &opts.serve {
            println!(
                "serving: {arrival:?} | {} clients | {} slots | queue cap {} | batch {}..={}",
                if opts.clients == 0 {
                    n as u64
                } else {
                    opts.clients
                },
                opts.slots,
                opts.queue_cap,
                opts.batch_min,
                opts.batch_max,
            );
        }
    }

    if opts.checkpoint_at.is_some() || opts.budget_secs.is_some() {
        let first = opts.checkpoint_at.unwrap_or(opts.checkpoint_every);
        run_legs(
            Sim.run_until(&scenario, VirtualTime::from_ticks(first)),
            &opts,
        );
        return;
    }

    let backend: &dyn Backend = if opts.runtime { &Threads } else { &Sim };
    report(&backend.run(&scenario), &opts);
}

/// `ofa explore` options.
struct ExploreOpts {
    seed: u64,
    budget_secs: Option<u64>,
    generations: Option<u64>,
    population: usize,
    workers: usize,
    sizes: Vec<usize>,
    algorithm: Algorithm,
    ones: Option<usize>,
    max_rounds: u64,
    loss_ppm: u32,
    dup_ppm: u32,
    max_loss: Option<u32>,
    max_dup: Option<u32>,
    max_poisson: Option<u32>,
    horizon: Option<u64>,
    min_rounds: Option<u64>,
    min_undecided: Option<u64>,
    emit_corpus: Option<String>,
    log: Option<String>,
    state: Option<String>,
    wall_secs: Option<u64>,
    json: bool,
}

fn parse_explore_args(args: &[String]) -> Result<ExploreOpts, String> {
    let mut opts = ExploreOpts {
        seed: 0,
        budget_secs: None,
        generations: None,
        population: 16,
        workers: 0,
        sizes: vec![1, 4, 2],
        algorithm: Algorithm::CommonCoin,
        ones: None,
        max_rounds: 64,
        loss_ppm: 0,
        dup_ppm: 0,
        max_loss: None,
        max_dup: None,
        max_poisson: None,
        horizon: None,
        min_rounds: None,
        min_undecided: None,
        emit_corpus: None,
        log: None,
        state: None,
        wall_secs: None,
        json: false,
    };
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
    };
    let num = |s: String| s.parse::<u64>().map_err(|e| e.to_string());
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print!("{EXPLORE_HELP}");
                exit(0);
            }
            "--seed" => opts.seed = num(value(&mut i)?)?,
            "--budget-secs" => opts.budget_secs = Some(num(value(&mut i)?)?),
            "--generations" => opts.generations = Some(num(value(&mut i)?)?),
            "--population" => {
                opts.population = num(value(&mut i)?)? as usize;
                if opts.population == 0 {
                    return Err("--population must be positive".into());
                }
            }
            "--workers" => opts.workers = num(value(&mut i)?)? as usize,
            "--sizes" => {
                opts.sizes = value(&mut i)?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| e.to_string()))
                    .collect::<Result<_, _>>()?;
            }
            "--algorithm" => {
                opts.algorithm = match value(&mut i)?.as_str() {
                    "lc" | "local" => Algorithm::LocalCoin,
                    "cc" | "common" => Algorithm::CommonCoin,
                    other => return Err(format!("unknown algorithm {other:?} (use lc|cc)")),
                };
            }
            "--ones" => opts.ones = Some(num(value(&mut i)?)? as usize),
            "--max-rounds" => opts.max_rounds = num(value(&mut i)?)?,
            "--loss" => opts.loss_ppm = parse_ppm(&value(&mut i)?, "--loss")?,
            "--dup" => opts.dup_ppm = parse_ppm(&value(&mut i)?, "--dup")?,
            "--max-loss" => opts.max_loss = Some(parse_ppm(&value(&mut i)?, "--max-loss")?),
            "--max-dup" => opts.max_dup = Some(parse_ppm(&value(&mut i)?, "--max-dup")?),
            "--max-poisson" => {
                opts.max_poisson = Some(parse_ppm(&value(&mut i)?, "--max-poisson")?)
            }
            "--horizon" => {
                opts.horizon = Some(num(value(&mut i)?)?);
                if opts.horizon == Some(0) {
                    return Err("--horizon must be positive".into());
                }
            }
            "--min-rounds" => opts.min_rounds = Some(num(value(&mut i)?)?),
            "--min-undecided" => opts.min_undecided = Some(num(value(&mut i)?)?),
            "--emit-corpus" => opts.emit_corpus = Some(value(&mut i)?),
            "--log" => opts.log = Some(value(&mut i)?),
            "--state" => opts.state = Some(value(&mut i)?),
            "--wall-secs" => opts.wall_secs = Some(num(value(&mut i)?)?),
            "--json" => opts.json = true,
            other => return Err(format!("unknown option {other:?} (try ofa explore --help)")),
        }
        i += 1;
    }
    if opts.wall_secs.is_some() && opts.state.is_none() {
        return Err("--wall-secs pauses into a state file; add --state FILE".into());
    }
    Ok(opts)
}

/// Runs `ofa explore`: build the base schedule and the search config,
/// run (or resume) the explorer, then write the log/corpus/state and
/// report. Exit codes: 0 finished clean, 1 finished having found an
/// agreement violation, 3 paused on `--wall-secs`.
fn explore_main(args: &[String]) {
    let opts = match parse_explore_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{EXPLORE_HELP}");
            exit(2);
        }
    };
    let partition = match Partition::from_sizes(&opts.sizes) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: invalid --sizes: {e}");
            exit(2);
        }
    };
    let n = partition.n();
    let ones = opts.ones.unwrap_or(n / 2).min(n);
    // No event cap: mutated schedules always terminate via the round
    // budget, and the default 5M-event guard would silently truncate
    // cluster-scale runs into "nobody decided" fitness noise.
    let base = Scenario::new(partition, opts.algorithm)
        .proposals_split(ones)
        .config(ProtocolConfig::paper().with_max_rounds(opts.max_rounds))
        .loss_ppm(opts.loss_ppm)
        .dup_ppm(opts.dup_ppm)
        .max_events(u64::MAX);

    let mut limits = Limits::for_n(n);
    if let Some(v) = opts.max_loss {
        limits.max_loss_ppm = v;
    }
    if let Some(v) = opts.max_dup {
        limits.max_dup_ppm = v;
    }
    if let Some(v) = opts.max_poisson {
        limits.max_poisson_ppm = v;
    }
    if let Some(v) = opts.horizon {
        limits.horizon_ticks = v;
    }
    let config = ExploreConfig {
        seed: opts.seed,
        population: opts.population,
        workers: opts.workers,
        generations: opts.generations,
        event_budget: opts.budget_secs.map(|b| b * EVENTS_PER_SEC),
        base,
        limits,
        filter: CorpusFilter {
            min_rounds: opts.min_rounds,
            min_undecided: opts.min_undecided,
        },
    };

    let mut explorer = match &opts.state {
        Some(path) if std::path::Path::new(path).exists() => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: reading {path}: {e}");
                    exit(2);
                }
            };
            let state: SearchState = match serde_json::from_str(&text) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: decoding search state {path}: {e}");
                    exit(2);
                }
            };
            if !opts.json {
                eprintln!("resumed: {path} at generation {}", state.generation);
            }
            Explorer::resume(config, state)
        }
        _ => Explorer::new(config),
    };

    let deadline = opts
        .wall_secs
        .map(|secs| Instant::now() + Duration::from_secs(secs));
    let finished = loop {
        if explorer.finished() {
            break true;
        }
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                break false;
            }
        }
        let rec = explorer.step();
        if !opts.json {
            eprintln!(
                "gen {:>3}: best {:?}{}",
                rec.generation,
                rec.best,
                if rec.improved { "  <- improved" } else { "" }
            );
        }
    };

    // The search log is the full per-generation history so far —
    // byte-identical however the run was paused and resumed.
    if let Some(path) = &opts.log {
        let mut log = String::new();
        for rec in &explorer.state().history {
            match serde_json::to_string(rec) {
                Ok(line) => {
                    log.push_str(&line);
                    log.push('\n');
                }
                Err(e) => {
                    eprintln!("error: serializing search log: {e}");
                    exit(2);
                }
            }
        }
        if let Err(e) = std::fs::write(path, log) {
            eprintln!("error: writing {path}: {e}");
            exit(2);
        }
    }

    if !finished {
        let path = opts.state.as_deref().expect("--wall-secs requires --state");
        match serde_json::to_string(explorer.state()) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("error: writing {path}: {e}");
                    exit(2);
                }
            }
            Err(e) => {
                eprintln!("error: serializing search state: {e}");
                exit(2);
            }
        }
        if opts.json {
            println!(
                "{{\"paused_at_generation\":{},\"state\":{:?}}}",
                explorer.state().generation,
                path
            );
        } else {
            println!(
                "paused at generation {} — state written to {path} (rerun to resume)",
                explorer.state().generation
            );
        }
        exit(3);
    }

    if let Some(dir) = &opts.emit_corpus {
        match write_corpus(std::path::Path::new(dir), explorer.corpus()) {
            Ok(count) => {
                if !opts.json {
                    eprintln!("corpus: {count} entries written to {dir}");
                }
            }
            Err(e) => {
                eprintln!("error: writing corpus to {dir}: {e}");
                exit(2);
            }
        }
    }

    let state = explorer.state();
    let best = explorer
        .best()
        .expect("a finished search evaluated something");
    if opts.json {
        let summary = serde_json::to_string(state).unwrap_or_else(|e| {
            eprintln!("error: serializing summary: {e}");
            exit(2);
        });
        println!("{summary}");
    } else {
        println!(
            "explored {} generations x {} candidates | {} simulated events",
            state.generation,
            explorer.config().population,
            state.events_spent
        );
        println!(
            "baseline: {}",
            fitness_text(&state.baseline.unwrap_or_default())
        );
        println!(
            "worst (gen {} slot {}): {}",
            best.found.generation,
            best.found.slot,
            fitness_text(&best.fitness)
        );
        match serde_json::to_string(&best.scenario) {
            Ok(json) => println!("worst schedule: {json}"),
            Err(e) => {
                eprintln!("error: serializing schedule: {e}");
                exit(2);
            }
        }
        println!("corpus: {} entries held", state.corpus.len());
    }
    if best.fitness.violation {
        if !opts.json {
            println!("\nagreement: VIOLATED by the worst schedule — found a bug");
        }
        exit(1);
    }
}

/// One-line human rendering of a [`Fitness`].
fn fitness_text(f: &Fitness) -> String {
    format!(
        "violation {} | undecided {} | rounds {} | stretch {} ticks",
        f.violation, f.undecided, f.max_round, f.stretch
    )
}

/// Loads a snapshot, applies any `--diverge-*` tail mutations, and
/// continues the run — straight to completion, to a `--checkpoint-at`
/// cut, or under a `--budget-secs` wall-clock budget.
fn run_resumed(opts: &Options, path: &str) {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: reading {path}: {e}");
            exit(2);
        }
    };
    let mut snap: Snapshot = match serde_json::from_str(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: decoding snapshot {path}: {e}");
            exit(2);
        }
    };
    let spec = DivergeSpec {
        seed: opts.diverge_seed,
        coin: opts.diverge_coin.clone(),
        extra_crashes: build_plan(&opts.diverge_crashes),
    };
    snap.scenario = spec.apply(&snap.scenario);
    if let Some(engine) = opts.engine {
        snap.scenario = snap.scenario.engine(engine);
    }
    if !opts.json {
        println!("resumed: {path} at t={}", snap.at.ticks());
    }
    let resumed_at = snap.at.ticks();
    if opts.checkpoint_at.is_some() || opts.budget_secs.is_some() {
        let first = opts
            .checkpoint_at
            .unwrap_or(resumed_at + opts.checkpoint_every);
        run_legs(
            Sim.resume_until(&snap, VirtualTime::from_ticks(first)),
            opts,
        );
    } else {
        report(&Sim.resume(&snap), opts);
    }
}

/// Drives a checkpointed run leg by leg. A single `--checkpoint-at` cut
/// pauses unconditionally; under `--budget-secs` the run advances by
/// `--checkpoint-every` ticks per leg until the wall-clock budget
/// expires. A pause writes the snapshot and exits 3.
fn run_legs(mut pending: RunOutcome, opts: &Options) {
    let deadline = opts
        .budget_secs
        .map(|secs| Instant::now() + Duration::from_secs(secs));
    loop {
        match pending {
            RunOutcome::Done(out) => {
                report(&out, opts);
                return;
            }
            RunOutcome::Paused(snap) => {
                let expired = match (opts.checkpoint_at, deadline) {
                    // A fixed cut always pauses there.
                    (Some(_), _) => true,
                    (None, Some(deadline)) => Instant::now() >= deadline,
                    (None, None) => true,
                };
                if expired {
                    save_snapshot(&snap, opts);
                    exit(3);
                }
                let next = snap.at.ticks() + opts.checkpoint_every;
                pending = Sim.resume_until(&snap, VirtualTime::from_ticks(next));
            }
        }
    }
}

fn save_snapshot(snap: &Snapshot, opts: &Options) {
    let json = match serde_json::to_string(snap) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("error: serializing snapshot: {e}");
            exit(2);
        }
    };
    if let Err(e) = std::fs::write(&opts.checkpoint_file, json) {
        eprintln!("error: writing {}: {e}", opts.checkpoint_file);
        exit(2);
    }
    if opts.json {
        println!(
            "{{\"paused_at\":{},\"checkpoint\":{:?}}}",
            snap.at.ticks(),
            opts.checkpoint_file
        );
    } else {
        println!(
            "paused at t={} — snapshot written to {} (resume with --resume)",
            snap.at.ticks(),
            opts.checkpoint_file
        );
    }
}

/// Prints the outcome (JSON or human-readable) and exits 1 on an
/// agreement violation.
fn report(out: &Outcome, opts: &Options) {
    let n = out.decisions.len();
    if opts.json {
        match serde_json::to_string(out) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("error: serializing outcome: {e}");
                exit(2);
            }
        }
        if !out.agreement_holds() {
            exit(1);
        }
        return;
    }

    if let Some(events) = &out.events {
        for e in events {
            println!("{e}");
        }
        println!();
    }
    if opts.runtime {
        println!("— real-thread run: {:?} —", out.elapsed);
    } else {
        let engine = match out.engine_used {
            Some(Engine::Threads) => " [threads]",
            Some(Engine::EventDriven) => " [event]",
            Some(Engine::ParallelEvent { .. }) => " [par]",
            None => "",
        };
        println!(
            "— simulated run{engine}: {} events, end {} —",
            out.events_processed, out.end_time
        );
    }
    for (i, d) in out.decisions.iter().enumerate() {
        match d {
            Some(d) => println!("  p{}: {d}", i + 1),
            None => println!("  p{}: {}", i + 1, halt_text(out.halts[i])),
        }
    }
    if let Some(hash) = out.trace_hash {
        println!(
            "  messages {} | cluster proposes {} | trace hash {hash:016x}",
            out.counters.messages_sent, out.counters.cluster_proposes
        );
    } else {
        println!(
            "  messages {} | cluster proposes {}",
            out.counters.messages_sent, out.counters.cluster_proposes
        );
    }
    let s = &out.service;
    if !s.is_empty() {
        println!(
            "  served: {} submitted | {} committed | {} shed | {} batches | max queue {}",
            s.submitted, s.committed, s.shed, s.batches, s.max_queue_depth
        );
        println!(
            "  latency p50 {} | p90 {} | p99 {} ticks | throughput {:.2} cmds/kilotick",
            s.latency.percentile(50),
            s.latency.percentile(90),
            s.latency.percentile(99),
            s.throughput_per_kilotick(out.end_time.ticks()),
        );
    }
    summarize(out.agreement_holds(), out.deciders(), n);
}

fn halt_text(h: Option<Halt>) -> &'static str {
    match h {
        Some(Halt::Crashed) => "crashed",
        Some(Halt::Stopped) => "stopped (undecided)",
        None => "unknown",
    }
}

fn summarize(agreement: bool, deciders: usize, n: usize) {
    println!(
        "\nagreement: {} | deciders: {deciders}/{n}",
        if agreement { "holds" } else { "VIOLATED" }
    );
    if !agreement {
        exit(1);
    }
}
