//! `ofa` — run one hybrid-model consensus execution from the command line.
//!
//! ```text
//! ofa --sizes 1,4,2 --algorithm cc --ones 3 --seed 42
//! ofa --sizes 3,2,2 --algorithm lc --crash p1@0 --crash p6@12 --trace
//! ofa --sizes 2,2 --crash p3@r2        # crash p3 when it enters round 2
//! ofa --sizes 2,2 --runtime            # real threads instead of the simulator
//! ofa --sizes 1,4,2 --engine threads    # pin the reference thread conductor
//! ofa --sizes 40,40,40 --engine par     # cluster-sharded parallel engine
//! ofa --sizes 1,4,2 --json             # unified Outcome as JSON
//! ofa --help
//! ```
//!
//! The CLI builds one [`Scenario`] value and executes it on the selected
//! [`Backend`] — the same description runs on either substrate.

use one_for_all::prelude::*;
use std::process::exit;

const HELP: &str = "\
ofa — run one hybrid-model consensus execution

USAGE:
    ofa [OPTIONS]

OPTIONS:
    --sizes a,b,c      cluster sizes, e.g. 1,4,2 (default: 1,4,2 = Fig.1 right)
    --algorithm lc|cc  local-coin (Alg 2) or common-coin (Alg 3) [default: cc]
    --ones K           first K processes propose 1, the rest 0 [default: n/2]
    --seed S           randomness seed [default: 0]
    --crash pI@K       crash process I (1-based) at env-call K (repeatable;
                       K=0 crashes before any step)
    --crash pI@rR      crash process I when it enters round R
    --max-rounds R     round budget [default: 512]
    --trace            print the full event trace (simulator only)
    --engine E         simulator process engine: event (single-threaded
                       event-driven state machines; scales to n >> 10^4),
                       par or par=N (cluster-sharded parallel event engine
                       on N workers, N omitted = one per core; identical
                       outcomes to event, bit for bit), or threads (the
                       reference conductor — pin this to reproduce
                       pre-flip runs) [default: event]
    --runtime          execute on real threads instead of the simulator
                       (--engine does not apply)
    --json             print the unified Outcome as JSON (suppresses the
                       human-readable report)
    --help             show this message
";

struct Options {
    sizes: Vec<usize>,
    algorithm: Algorithm,
    ones: Option<usize>,
    seed: u64,
    crashes: Vec<(usize, CrashWhen)>,
    max_rounds: u64,
    trace: bool,
    engine: Engine,
    runtime: bool,
    json: bool,
}

/// A parsed `--crash` trigger.
enum CrashWhen {
    Step(u64),
    Round(u64),
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        sizes: vec![1, 4, 2],
        algorithm: Algorithm::CommonCoin,
        ones: None,
        seed: 0,
        crashes: Vec::new(),
        max_rounds: 512,
        trace: false,
        engine: Engine::default(),
        runtime: false,
        json: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => {
                print!("{HELP}");
                exit(0);
            }
            "--sizes" => {
                opts.sizes = value(&mut i)?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>().map_err(|e| e.to_string()))
                    .collect::<Result<_, _>>()?;
            }
            "--algorithm" => {
                opts.algorithm = match value(&mut i)?.as_str() {
                    "lc" | "local" => Algorithm::LocalCoin,
                    "cc" | "common" => Algorithm::CommonCoin,
                    other => return Err(format!("unknown algorithm {other:?} (use lc|cc)")),
                };
            }
            "--ones" => {
                opts.ones = Some(
                    value(&mut i)?
                        .parse()
                        .map_err(|e: std::num::ParseIntError| e.to_string())?,
                )
            }
            "--seed" => {
                opts.seed = value(&mut i)?
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?
            }
            "--max-rounds" => {
                opts.max_rounds = value(&mut i)?
                    .parse()
                    .map_err(|e: std::num::ParseIntError| e.to_string())?
            }
            "--crash" => {
                let spec = value(&mut i)?;
                opts.crashes.push(parse_crash(&spec)?);
            }
            "--trace" => opts.trace = true,
            "--engine" => {
                opts.engine = match value(&mut i)?.as_str() {
                    "threads" => Engine::Threads,
                    "event" | "event-driven" => Engine::EventDriven,
                    "par" | "parallel" => Engine::parallel(),
                    spec if spec.starts_with("par=") => {
                        let workers = spec["par=".len()..]
                            .parse::<u64>()
                            .map_err(|e| format!("bad worker count in {spec:?}: {e}"))?;
                        Engine::ParallelEvent { workers }
                    }
                    other => {
                        return Err(format!(
                            "unknown engine {other:?} (use threads|event|par|par=N)"
                        ))
                    }
                };
            }
            "--runtime" => opts.runtime = true,
            "--json" => opts.json = true,
            other => return Err(format!("unknown option {other:?} (try --help)")),
        }
        i += 1;
    }
    Ok(opts)
}

/// Parses `pI@K` (step trigger) or `pI@rR` (round trigger) into a 0-based
/// process index plus trigger.
fn parse_crash(spec: &str) -> Result<(usize, CrashWhen), String> {
    let (proc_part, when_part) = spec
        .split_once('@')
        .ok_or_else(|| format!("bad crash spec {spec:?}, expected pI@K or pI@rR"))?;
    let pid: usize = proc_part
        .trim_start_matches('p')
        .parse()
        .map_err(|e: std::num::ParseIntError| e.to_string())?;
    if pid == 0 {
        return Err("process numbering is 1-based".into());
    }
    let when = if let Some(round_part) = when_part.strip_prefix('r') {
        let round: u64 = round_part
            .parse()
            .map_err(|e: std::num::ParseIntError| e.to_string())?;
        CrashWhen::Round(round)
    } else {
        let step: u64 = when_part
            .parse()
            .map_err(|e: std::num::ParseIntError| e.to_string())?;
        CrashWhen::Step(step)
    };
    Ok((pid - 1, when))
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{HELP}");
            exit(2);
        }
    };
    let partition = match Partition::from_sizes(&opts.sizes) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: invalid --sizes: {e}");
            exit(2);
        }
    };
    let n = partition.n();
    let ones = opts.ones.unwrap_or(n / 2).min(n);

    let mut plan = CrashPlan::new();
    for (p, when) in &opts.crashes {
        plan = match when {
            CrashWhen::Step(k) => plan.crash_at_step(ProcessId(*p), *k),
            CrashWhen::Round(r) => plan.crash_at_round(ProcessId(*p), *r),
        };
    }
    let mut scenario = Scenario::new(partition.clone(), opts.algorithm)
        .proposals_split(ones)
        .config(ProtocolConfig::paper().with_max_rounds(opts.max_rounds))
        .crashes(plan)
        .engine(opts.engine)
        .seed(opts.seed);
    if opts.trace && !opts.runtime {
        scenario = scenario.keep_trace();
    }

    if !opts.json {
        println!("partition: {partition}");
        println!(
            "algorithm: {} | proposals: {ones}x1 + {}x0 | seed {}",
            opts.algorithm,
            n - ones,
            opts.seed
        );
        for (p, when) in &opts.crashes {
            match when {
                CrashWhen::Step(k) => println!("crash: p{} at step {k}", p + 1),
                CrashWhen::Round(r) => println!("crash: p{} at round {r}", p + 1),
            }
        }
    }

    let backend: &dyn Backend = if opts.runtime { &Threads } else { &Sim };
    let out = backend.run(&scenario);

    if opts.json {
        match serde_json::to_string(&out) {
            Ok(json) => println!("{json}"),
            Err(e) => {
                eprintln!("error: serializing outcome: {e}");
                exit(2);
            }
        }
        if !out.agreement_holds() {
            exit(1);
        }
        return;
    }

    if let Some(events) = &out.events {
        for e in events {
            println!("{e}");
        }
        println!();
    }
    if opts.runtime {
        println!("— real-thread run: {:?} —", out.elapsed);
    } else {
        let engine = match out.engine_used {
            Some(Engine::Threads) => " [threads]",
            Some(Engine::EventDriven) => " [event]",
            Some(Engine::ParallelEvent { .. }) => " [par]",
            None => "",
        };
        println!(
            "— simulated run{engine}: {} events, end {} —",
            out.events_processed, out.end_time
        );
    }
    for (i, d) in out.decisions.iter().enumerate() {
        match d {
            Some(d) => println!("  p{}: {d}", i + 1),
            None => println!("  p{}: {}", i + 1, halt_text(out.halts[i])),
        }
    }
    if let Some(hash) = out.trace_hash {
        println!(
            "  messages {} | cluster proposes {} | trace hash {hash:016x}",
            out.counters.messages_sent, out.counters.cluster_proposes
        );
    } else {
        println!(
            "  messages {} | cluster proposes {}",
            out.counters.messages_sent, out.counters.cluster_proposes
        );
    }
    summarize(out.agreement_holds(), out.deciders(), n);
}

fn halt_text(h: Option<Halt>) -> &'static str {
    match h {
        Some(Halt::Crashed) => "crashed",
        Some(Halt::Stopped) => "stopped (undecided)",
        None => "unknown",
    }
}

fn summarize(agreement: bool, deciders: usize, n: usize) {
    println!(
        "\nagreement: {} | deciders: {deciders}/{n}",
        if agreement { "holds" } else { "VIOLATED" }
    );
    if !agreement {
        exit(1);
    }
}
