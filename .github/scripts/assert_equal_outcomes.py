#!/usr/bin/env python3
"""Assert two `ofa --json` outcome documents agree on every
deterministic field. Used by the checkpoint-smoke gate to prove that a
run paused at a snapshot and resumed from the saved file reproduces the
straight-through execution bit for bit.

Usage: assert_equal_outcomes.py STRAIGHT.json RESUMED.json
"""
import json
import sys

# Deterministic observables: everything except wall-clock timings
# (elapsed_us, latest_decision_us) and the backend/engine labels.
KEYS = (
    "trace_hash",
    "events_processed",
    "end_time",
    "decisions",
    "counters",
    "per_process",
    "halts",
    "crashed",
    "all_correct_decided",
    "agreement_holds",
    "latest_decision_time",
    "sm_proposes",
    "sm_objects",
)


def main() -> int:
    straight_path, resumed_path = sys.argv[1], sys.argv[2]
    with open(straight_path) as f:
        straight = json.load(f)
    with open(resumed_path) as f:
        resumed = json.load(f)
    bad = [k for k in KEYS if straight.get(k) != resumed.get(k)]
    for k in bad:
        print(f"MISMATCH {k}: {straight.get(k)!r} != {resumed.get(k)!r}")
    if bad:
        return 1
    print(
        "resumed run reproduces the straight-through run: "
        f"trace_hash={straight['trace_hash']} "
        f"events={straight['events_processed']} end={straight['end_time']}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
