#!/usr/bin/env python3
"""Compare the current run's BENCH_*.json against the previous CI run's
artifact of the same name and append a throughput trend table to the job
summary. Trended metrics: events/s and commit throughput (higher is
better), and p99 service latency (lower is better). Rows that moved more
than THRESHOLD in the bad direction emit a warning annotation; the step
never fails the job — trends inform, gates enforce.

Usage: bench_trend.py CURRENT.json ARTIFACT_NAME

Environment: GITHUB_TOKEN, GITHUB_REPOSITORY, GITHUB_RUN_ID (set by the
workflow), GITHUB_STEP_SUMMARY (set by the runner).
"""
import io
import json
import os
import sys
import urllib.request
import zipfile

THRESHOLD = 0.15

# Column headers that are measured outputs, not sweep axes. Rows are
# matched across runs by their *axis* cells — for ESCALE that is just
# `n`, for PARSCALE `(n, workers)`, for NETSCALE `(n, loss ppm,
# churn ppm)` (every cell shares the same n, so the first column alone
# would collide). The second group is SERVE's service-metric columns.
METRIC_MARKERS = (
    "[s]",
    "/s",
    "speedup",
    "events",
    "virtual end",
    "decision t",
    "rounds",
    "deciders",
    "offered",
    "committed",
    "shed",
    "queue",
    "p50",
    "p99",
    "thr",
)


def axis_key(cols, row):
    return tuple(
        cell
        for col, cell in zip(cols, row)
        if not any(m in col for m in METRIC_MARKERS)
    )


def trended(col):
    """(watch this column?, lower-is-better?) — events/s and commit
    throughput regress when they drop; p99 latency regresses when it
    climbs."""
    if ("ev" in col and "/s" in col) or "thr" in col:
        return True, False
    if "p99" in col:
        return True, True
    return False, False


def api(url: str, token: str, raw: bool = False):
    req = urllib.request.Request(url)
    req.add_header("Authorization", f"Bearer {token}")
    req.add_header("X-GitHub-Api-Version", "2022-11-28")
    with urllib.request.urlopen(req, timeout=60) as resp:
        data = resp.read()
    return data if raw else json.loads(data)


def previous_artifact(repo: str, name: str, run_id: str, token: str):
    """The newest non-expired artifact of this name from a *different*
    workflow run (the current run may have uploaded one already)."""
    url = (
        f"https://api.github.com/repos/{repo}/actions/artifacts"
        f"?name={name}&per_page=20"
    )
    listing = api(url, token)
    for art in listing.get("artifacts", []):
        run = art.get("workflow_run") or {}
        if str(run.get("id")) != run_id and not art.get("expired"):
            return art
    return None


def load_artifact_json(art, token: str):
    blob = api(art["archive_download_url"], token, raw=True)
    with zipfile.ZipFile(io.BytesIO(blob)) as z:
        name = next(n for n in z.namelist() if n.endswith(".json"))
        return json.loads(z.read(name))


def main() -> int:
    cur_path, artifact_name = sys.argv[1], sys.argv[2]
    token = os.environ.get("GITHUB_TOKEN", "")
    repo = os.environ.get("GITHUB_REPOSITORY", "")
    run_id = os.environ.get("GITHUB_RUN_ID", "")
    with open(cur_path) as f:
        cur = json.load(f)
    if not (token and repo):
        print("no GITHUB_TOKEN/GITHUB_REPOSITORY; skipping bench trend")
        return 0
    try:
        art = previous_artifact(repo, artifact_name, run_id, token)
        if art is None:
            print(f"no previous {artifact_name!r} artifact; baseline starts here")
            return 0
        old = load_artifact_json(art, token)
    except Exception as e:  # advisory step: degrade to a notice, never fail
        print(f"::notice::bench trend unavailable: {e}")
        return 0

    prev_run = (art.get("workflow_run") or {}).get("id", "?")
    lines = [
        f"### Bench trend: `{artifact_name}` vs run {prev_run}",
        "",
        "| experiment | cell | metric | previous | current | change |",
        "|---|---|---|---|---|---|",
    ]
    regressions = []
    for exp in cur.get("experiments", []):
        old_exp = next(
            (o for o in old.get("experiments", []) if o.get("id") == exp.get("id")),
            None,
        )
        if not old_exp or old_exp.get("columns") != exp.get("columns"):
            continue
        cols = exp["columns"]
        watch = [
            (i, lower_better)
            for i, c in enumerate(cols)
            for keep, lower_better in (trended(c),)
            if keep
        ]
        old_rows = {axis_key(cols, row): row for row in old_exp.get("rows", [])}
        for row in exp.get("rows", []):
            key = axis_key(cols, row)
            prev_row = old_rows.get(key)
            if not prev_row:
                continue
            label = "/".join(key)
            for i, lower_better in watch:
                try:
                    before, after = float(prev_row[i]), float(row[i])
                except ValueError:
                    continue  # '—' placeholder cells
                if before <= 0:
                    continue
                change = after / before - 1.0
                lines.append(
                    f"| {exp['id']} | {label} | {cols[i]} "
                    f"| {before:.3g} | {after:.3g} | {change:+.1%} |"
                )
                worse = change > THRESHOLD if lower_better else change < -THRESHOLD
                if worse:
                    regressions.append(
                        f"{exp['id']} {label} {cols[i]}: "
                        f"{before:.3g} -> {after:.3g} ({change:+.1%})"
                    )

    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as f:
            f.write("\n".join(lines) + "\n")
    for r in regressions:
        print(f"::warning::bench regression > {THRESHOLD:.0%}: {r}")
    if not regressions:
        print("no bench regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
