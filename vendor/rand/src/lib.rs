//! Offline, API-compatible shim for the subset of [`rand` 0.8] used by this
//! workspace: [`SeedableRng::seed_from_u64`], [`rngs::StdRng`],
//! [`Rng::gen_bool`], [`Rng::gen_range`], and [`Rng::gen`].
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the handful of external APIs it needs as small local crates
//! (see `vendor/` in the repository root). The generator here is
//! xoshiro256++ seeded through SplitMix64 — deterministic for a given
//! seed, statistically solid for simulation workloads, and *not*
//! cryptographically secure (neither is the real `StdRng` contractually).
//!
//! [`rand` 0.8]: https://docs.rs/rand/0.8

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        // 53 random mantissa bits, the same construction rand 0.8 uses.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Samples a value of a [`Standard`]-distributed type.
    ///
    /// [`Standard`]: distributions::Standard
    fn gen<T>(&mut self) -> T
    where
        T: distributions::Generable,
    {
        T::generate(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Same seed ⇒ same stream, on every platform.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// Exposes the raw xoshiro256++ state, for checkpointing.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured [`state`].
        ///
        /// [`state`]: StdRng::state
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

/// Uniform sampling over ranges (the subset of `rand::distributions` the
/// workspace touches).
pub mod distributions {
    use super::Rng;

    /// Types producible by [`Rng::gen`].
    pub trait Generable {
        /// Samples one value.
        fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self;
    }

    impl Generable for bool {
        fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Generable for u64 {
        fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Generable for u8 {
        fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 56) as u8
        }
    }

    impl Generable for f64 {
        fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Range-based uniform sampling.
    pub mod uniform {
        use crate::Rng;
        use std::ops::{Range, RangeInclusive};

        /// A range from which a single `T` can be drawn uniformly.
        pub trait SampleRange<T> {
            /// Draws one sample.
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Maps a random word into `[0, span)` by fixed-point multiply
        /// (Lemire); bias is < span/2^64, irrelevant at simulation scales.
        fn scale(word: u64, span: u64) -> u64 {
            ((u128::from(word) * u128::from(span)) >> 64) as u64
        }

        macro_rules! impl_int_range {
            ($($t:ty),*) => {$(
                impl SampleRange<$t> for Range<$t> {
                    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "gen_range: empty range");
                        let span = (self.end as u64).wrapping_sub(self.start as u64);
                        self.start + scale(rng.next_u64(), span) as $t
                    }
                }
                impl SampleRange<$t> for RangeInclusive<$t> {
                    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "gen_range: empty range");
                        let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                        if span == 0 {
                            // Full-width inclusive range: every word is valid.
                            return rng.next_u64() as $t;
                        }
                        lo + scale(rng.next_u64(), span) as $t
                    }
                }
            )*};
        }

        impl_int_range!(u8, u16, u32, u64, usize);

        impl SampleRange<f64> for Range<f64> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                self.start + unit * (self.end - self.start)
            }
        }

        impl SampleRange<f64> for RangeInclusive<f64> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + unit * (hi - lo)
            }
        }
    }

    /// Marker kept for signature compatibility with `rand::distributions`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    /// Bernoulli trial decided by a single random word against a
    /// parts-per-million threshold — a pure integer compare, so the
    /// outcome is identical on every platform and needs no float math.
    /// `ppm = 0` is always `false`, `ppm >= 1_000_000` always `true`.
    pub fn bernoulli_ppm(word: u64, ppm: u32) -> bool {
        if ppm >= 1_000_000 {
            return true;
        }
        // threshold = ppm / 10^6 of the 2^64 word space, computed in u128
        // so the scaling itself is exact.
        let threshold = (u128::from(ppm) << 64) / 1_000_000;
        u128::from(word) < threshold
    }

    /// Approximate standard normal deviate via Irwin–Hall: the sum of 12
    /// uniform `[0,1)` samples minus 6 has mean 0, variance 1, and support
    /// `[-6, 6]`. Only IEEE-exact additions are involved, so the result is
    /// bit-identical on every platform (unlike `ln`/`cos`-based methods,
    /// whose libm implementations differ).
    pub fn std_normal_irwin_hall<R: super::Rng + ?Sized>(rng: &mut R) -> f64 {
        let mut sum = 0.0f64;
        for _ in 0..12 {
            sum += (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        }
        sum - 6.0
    }

    /// Platform-deterministic `2^x`: integer exponent assembly plus a
    /// fixed-coefficient Taylor polynomial for the fractional part. Uses
    /// only IEEE-exact `f64` operations (`+`, `*`, bit assembly), never
    /// libm, so every platform computes the same bits. Accuracy is ~1e-5
    /// relative — ample for sampling jitter distributions.
    pub fn exp2_deterministic(x: f64) -> f64 {
        let n = x.floor();
        let f = x - n;
        // Taylor coefficients of 2^f = e^(f ln 2), fixed literals.
        let p = 1.0
            + f * (core::f64::consts::LN_2
                + f * (0.240_226_506_959_100_7
                    + f * (0.055_504_108_664_821_58
                        + f * (0.009_618_129_107_628_477
                            + f * (0.001_333_355_814_642_844_3
                                + f * 0.000_154_035_303_933_816_1)))));
        let n = n as i64;
        if n < -1_022 {
            return 0.0;
        }
        if n > 1_023 {
            return f64::MAX;
        }
        // 2^n as a bit pattern: biased exponent, zero mantissa.
        let pow2n = f64::from_bits(((n + 1_023) as u64) << 52);
        pow2n * p
    }

    /// Platform-deterministic `log2(x)` for finite positive `x`: the
    /// exponent comes straight from the bit pattern and the mantissa's
    /// log via an atanh series over `t = (m−1)/(m+1)` (|t| ≤ 1/3, so the
    /// truncated tail is < 1e-7 relative). Only IEEE-exact operations —
    /// `+`, `*`, `/`, bit extraction — are involved, never libm, so
    /// every platform computes the same bits. The dual of
    /// [`exp2_deterministic`].
    pub fn log2_deterministic(x: f64) -> f64 {
        debug_assert!(x > 0.0 && x.is_finite(), "log2: x={x} out of domain");
        let bits = x.to_bits();
        let e = (((bits >> 52) & 0x7FF) as i64) - 1_023;
        // Re-bias the mantissa into [1, 2).
        let m = f64::from_bits((bits & 0x000F_FFFF_FFFF_FFFF) | (1_023u64 << 52));
        let t = (m - 1.0) / (m + 1.0);
        let t2 = t * t;
        // atanh(t) = t + t³/3 + t⁵/5 + … ; log2(m) = 2·atanh(t)/ln 2.
        let s = t
            * (1.0
                + t2 * (1.0 / 3.0
                    + t2 * (1.0 / 5.0 + t2 * (1.0 / 7.0 + t2 * (1.0 / 9.0 + t2 * (1.0 / 11.0))))));
        e as f64 + s * (2.0 / core::f64::consts::LN_2)
    }

    /// An exponential sample with the given `mean`, in integer ticks
    /// (truncating). Inverse-CDF over a `(0, 1]` uniform (the `+1`
    /// excludes zero so the log stays finite) built entirely from
    /// platform-exact float operations via [`log2_deterministic`] —
    /// bit-identical on every platform. `mean = 0` degenerates to `0`.
    pub fn exponential_ticks<R: super::Rng + ?Sized>(rng: &mut R, mean: u64) -> u64 {
        if mean == 0 {
            return 0;
        }
        let u = ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
        let exp1 = -log2_deterministic(u) * core::f64::consts::LN_2;
        (mean as f64 * exp1) as u64
    }

    /// A lognormal-style positive sample: `median × 2^(σ·z)` with `z`
    /// drawn from [`std_normal_irwin_hall`] and `σ` given in thousandths
    /// (`sigma_milli = 1_000` ⇒ one base-2 order of magnitude per
    /// standard deviation). Built entirely from platform-exact float
    /// operations; the result truncates (saturating) to integer ticks.
    pub fn log_normal_ticks<R: super::Rng + ?Sized>(
        rng: &mut R,
        median: u64,
        sigma_milli: u32,
    ) -> u64 {
        let z = std_normal_irwin_hall(rng);
        let sigma = sigma_milli as f64 * 0.001;
        (median as f64 * exp2_deterministic(sigma * z)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(3..=3);
            assert_eq!(y, 3);
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..100_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((45_000..55_000).contains(&heads), "heads={heads}");
    }

    #[test]
    fn bernoulli_ppm_extremes_and_rate() {
        use super::distributions::bernoulli_ppm;
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1_000 {
            let w = rng.next_u64();
            assert!(!bernoulli_ppm(w, 0));
            assert!(bernoulli_ppm(w, 1_000_000));
        }
        // 10% in ppm over many words lands near 10%.
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000)
            .filter(|_| bernoulli_ppm(rng.next_u64(), 100_000))
            .count();
        assert!((8_000..12_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn exp2_deterministic_matches_exact_powers() {
        use super::distributions::exp2_deterministic;
        // Integer exponents have a zero fractional part, so the
        // polynomial contributes exactly 1 and the result is exact.
        assert_eq!(exp2_deterministic(0.0), 1.0);
        assert_eq!(exp2_deterministic(3.0), 8.0);
        assert_eq!(exp2_deterministic(-2.0), 0.25);
        // Fractional values approximate to ~1e-5 relative.
        let half = exp2_deterministic(0.5);
        assert!((half - std::f64::consts::SQRT_2).abs() < 1e-4, "{half}");
        // Deep underflow and overflow saturate instead of misbehaving.
        assert_eq!(exp2_deterministic(-2_000.0), 0.0);
        assert_eq!(exp2_deterministic(2_000.0), f64::MAX);
    }

    #[test]
    fn log2_deterministic_matches_exact_powers() {
        use super::distributions::{exp2_deterministic, log2_deterministic};
        assert_eq!(log2_deterministic(1.0), 0.0);
        assert_eq!(log2_deterministic(8.0), 3.0);
        assert_eq!(log2_deterministic(0.25), -2.0);
        // Fractional arguments approximate tightly and invert exp2.
        for x in [-3.7f64, -0.2, 0.5, 1.9, 10.3] {
            let y = log2_deterministic(exp2_deterministic(x));
            assert!((y - x).abs() < 1e-4, "x={x} round-tripped to {y}");
        }
    }

    #[test]
    fn exponential_ticks_is_deterministic_with_the_right_mean() {
        use super::distributions::exponential_ticks;
        let mut a = StdRng::seed_from_u64(8);
        let mut b = StdRng::seed_from_u64(8);
        let mut sum = 0u64;
        const N: u64 = 100_000;
        for _ in 0..N {
            let s = exponential_ticks(&mut a, 1_000);
            assert_eq!(s, exponential_ticks(&mut b, 1_000), "same stream");
            sum += s;
        }
        // Sample mean lands near the requested mean (±5%).
        let mean = sum / N;
        assert!((950..1_050).contains(&mean), "mean={mean}");
        // Zero mean degenerates without touching the log's domain edge.
        let mut c = StdRng::seed_from_u64(9);
        assert_eq!(exponential_ticks(&mut c, 0), 0);
    }

    #[test]
    fn log_normal_ticks_is_centered_and_deterministic() {
        use super::distributions::log_normal_ticks;
        let mut a = StdRng::seed_from_u64(6);
        let mut b = StdRng::seed_from_u64(6);
        let mut below = 0usize;
        for _ in 0..10_000 {
            let s = log_normal_ticks(&mut a, 1_000, 500);
            assert_eq!(s, log_normal_ticks(&mut b, 1_000, 500), "same stream");
            if s < 1_000 {
                below += 1;
            }
        }
        // z is symmetric around 0, so ~half the mass sits below the median.
        assert!((4_000..6_000).contains(&below), "below={below}");
        // Zero sigma degenerates to the median exactly.
        let mut c = StdRng::seed_from_u64(7);
        assert_eq!(log_normal_ticks(&mut c, 777, 0), 777);
    }
}
