//! Offline, API-compatible shim for the subset of `serde` this workspace
//! uses: the [`Serialize`] / [`Deserialize`] traits plus
//! `#[derive(Serialize, Deserialize)]`.
//!
//! Instead of serde's visitor architecture, this shim uses a simple
//! value-tree data model ([`Value`]): serialization converts a type to a
//! [`Value`], deserialization reads one back. The companion `serde_json`
//! shim renders a [`Value`] to JSON text and parses it back, so
//! `serde_json::to_string` / `from_str` round-trip exactly as user code
//! expects. See `vendor/` in the repository root for why these shims
//! exist (the build environment cannot reach crates.io).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model all (de)serialization goes through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` / Rust `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer (only produced for negative values).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered string-keyed map (struct fields, map entries).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a [`Value::Map`].
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Creates an error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Conversion back from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reads `Self` out of a [`Value`] tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value does not have the expected shape.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// A [`Value`] is already in the data model — serializing is identity.
/// Lets callers hand-build trees (e.g. report documents) and feed them
/// straight to `serde_json::to_string`.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---- primitive impls ----------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range"))),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range"))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::msg(format!("{n} out of range"))),
                    _ => Err(Error::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::msg("expected bool")),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            _ => Err(Error::msg("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::msg("expected string")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected sequence")),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

/// Types usable as map keys (serialized as JSON object keys, which must
/// be strings).
pub trait MapKey: Ord + Sized {
    /// Renders the key as a string.
    fn to_key(&self) -> String;
    /// Parses the key back.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `s` does not parse as this key type.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::msg(format!("bad map key {s:?}")))
            }
        }
    )*};
}

impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected map")),
        }
    }
}

impl<K: MapKey + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: MapKey + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::msg("expected map")),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) => {
                        let mut it = items.iter();
                        Ok(($({
                            let _ = $n;
                            $t::from_value(it.next().ok_or_else(|| Error::msg("tuple too short"))?)?
                        },)+))
                    }
                    _ => Err(Error::msg("expected tuple sequence")),
                }
            }
        }
    )*};
}

impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_round_trip() {
        let v: Option<Option<bool>> = Some(Some(true));
        assert_eq!(Deserialize::from_value(&v.to_value()), Ok(v));
        let n: Option<u64> = None;
        assert_eq!(n.to_value(), Value::Null);
    }

    #[test]
    fn map_keys_stringify() {
        let mut m = BTreeMap::new();
        m.insert(3u64, 9u64);
        let v = m.to_value();
        assert_eq!(v.get("3"), Some(&Value::U64(9)));
        assert_eq!(BTreeMap::<u64, u64>::from_value(&v), Ok(m));
    }
}
