//! Offline, API-compatible shim for the subset of [`criterion` 0.5] used
//! by this workspace: `criterion_group!` / `criterion_main!`,
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and
//! [`black_box`].
//!
//! Measurement is deliberately simple — median of per-sample mean
//! iteration times, printed as text. Two modes, matching how cargo
//! invokes bench binaries:
//!
//! - `--bench` present (as `cargo bench` passes): timed runs;
//! - otherwise (e.g. `cargo test --benches`): each benchmark body runs
//!   once as a smoke test, keeping test runs fast.
//!
//! A positional argument acts as a substring filter on benchmark names,
//! like the real CLI. See `vendor/` in the repository root for why these
//! shims exist (the build environment cannot reach crates.io).
//!
//! [`criterion` 0.5]: https://docs.rs/criterion/0.5

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting a
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (accepted for API parity; the
/// shim always runs setup per iteration, outside the timed region).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Drives one benchmark's timing loop.
pub struct Bencher<'a> {
    mode: Mode,
    samples: usize,
    result: &'a mut Option<Duration>,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Timed,
    Smoke,
}

impl Bencher<'_> {
    /// Times `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::Smoke => {
                black_box(routine());
            }
            Mode::Timed => {
                // Calibrate: grow the iteration count until one sample
                // takes ≥ ~1ms, then take `samples` samples.
                let mut iters: u64 = 1;
                loop {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                        break;
                    }
                    iters *= 2;
                }
                let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
                for _ in 0..self.samples {
                    let start = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    per_iter.push(start.elapsed() / iters as u32);
                }
                per_iter.sort();
                *self.result = Some(per_iter[per_iter.len() / 2]);
            }
        }
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::Smoke => {
                let input = setup();
                black_box(routine(input));
            }
            Mode::Timed => {
                let mut iters: u64 = 1;
                loop {
                    let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
                    let start = Instant::now();
                    for input in inputs {
                        black_box(routine(input));
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                        break;
                    }
                    iters *= 2;
                }
                let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples);
                for _ in 0..self.samples {
                    let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
                    let start = Instant::now();
                    for input in inputs {
                        black_box(routine(input));
                    }
                    per_iter.push(start.elapsed() / iters as u32);
                }
                per_iter.sort();
                *self.result = Some(per_iter[per_iter.len() / 2]);
            }
        }
    }
}

/// The benchmark registry/driver (a far smaller cousin of the real one).
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let timed = args.iter().any(|a| a == "--bench");
        // First non-flag argument = substring filter (cargo bench <filter>).
        let filter = args.iter().find(|a| !a.starts_with("--")).cloned();
        Criterion {
            mode: if timed { Mode::Timed } else { Mode::Smoke },
            filter,
            default_samples: 10,
        }
    }
}

impl Criterion {
    fn runs(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, samples: usize, mut f: F) {
        if !self.runs(name) {
            return;
        }
        let mut result = None;
        let mut b = Bencher {
            mode: self.mode,
            samples,
            result: &mut result,
        };
        f(&mut b);
        match (self.mode, result) {
            (Mode::Smoke, _) => println!("bench {name}: ok (smoke)"),
            (Mode::Timed, Some(t)) => println!("bench {name}: {t:?}/iter (median)"),
            (Mode::Timed, None) => println!("bench {name}: no measurement recorded"),
        }
    }

    /// Registers and runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let samples = self.default_samples;
        self.run_one(name, samples, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            samples: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and sample-count override.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    samples: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = Some(n);
        self
    }

    /// Registers and runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{name}", self.name);
        let samples = self.samples.unwrap_or(self.criterion.default_samples);
        self.criterion.run_one(&full, samples, f);
        self
    }

    /// Ends the group (accepted for API parity).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_body_once() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            filter: None,
            default_samples: 10,
        };
        let mut runs = 0;
        c.bench_function("t", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            filter: Some("yes".to_string()),
            default_samples: 10,
        };
        let mut runs = 0;
        c.bench_function("no_match", |b| b.iter(|| runs += 1));
        c.benchmark_group("group_yes")
            .bench_function("inner", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 1);
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut c = Criterion {
            mode: Mode::Smoke,
            filter: None,
            default_samples: 10,
        };
        c.bench_function("batched", |b| {
            b.iter_batched(
                Vec::<u8>::new,
                |v| assert!(v.is_empty()),
                BatchSize::SmallInput,
            )
        });
    }
}
