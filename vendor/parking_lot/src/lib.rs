//! Offline, API-compatible shim for the subset of [`parking_lot` 0.12]
//! used by this workspace: [`Mutex`] and [`RwLock`] whose lock methods
//! return guards directly (no `Result`, no poisoning), matching
//! `parking_lot` semantics over `std::sync` primitives.
//!
//! See `vendor/` in the repository root for why these shims exist (the
//! build environment cannot reach crates.io).
//!
//! [`parking_lot` 0.12]: https://docs.rs/parking_lot/0.12

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock that, like `parking_lot::Mutex`, never
/// poisons: a panic while holding the guard leaves the data accessible.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data (requires `&mut self`, so
    /// no locking is needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock mirroring `parking_lot::RwLock`: guard-returning
/// methods, no poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference to the data (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0); // no poisoning: still usable
    }
}
