//! Offline `serde_json` shim: renders the serde shim's [`Value`] tree to
//! JSON text and parses it back, exposing the familiar
//! [`to_string`] / [`from_str`] entry points.
//!
//! See `vendor/` in the repository root for why these shims exist (the
//! build environment cannot reach crates.io).

use std::fmt::Write as _;

pub use serde::{Error, Value};

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Returns [`Error`] if a non-finite float is encountered (JSON cannot
/// represent NaN/infinities).
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Parses JSON text into any [`serde::Deserialize`] type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.i)));
    }
    T::from_value(&v)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::msg("JSON cannot represent non-finite floats"));
            }
            // Keep floats round-trippable: always include a decimal point
            // or exponent so they re-parse as F64.
            if x.fract() == 0.0 && x.abs() < 1e15 {
                let _ = write!(out, "{x:.1}");
            } else {
                let _ = write!(out, "{x}");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected {:?} at byte {}",
                b as char, self.i
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.s[self.i..].starts_with(kw.as_bytes()) {
            self.i += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::msg("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.i += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::msg("expected `,` or `}`")),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.i
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .s
                                .get(self.i + 1..self.i + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.i += 4;
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume the longest run of unescaped bytes in one
                    // step, validating UTF-8 once per run rather than
                    // per character (per-char `from_utf8` of the whole
                    // tail is quadratic on large documents). A run can
                    // never split a multi-byte sequence: `"` and `\` are
                    // ASCII and never appear as continuation bytes.
                    let start = self.i;
                    while let Some(&b) = self.s.get(self.i) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.i += 1;
                    }
                    let run = std::str::from_utf8(&self.s[start..self.i])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.i += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i])
            .map_err(|_| Error::msg("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::msg(format!("bad number {text:?}")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|n| Value::I64(-(n as i64)))
                .map_err(|_| Error::msg(format!("bad number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::msg(format!("bad number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<Option<bool>>("null").unwrap(), None);
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let s = "a\"b\\c\nd\tε".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(to_string(&v).unwrap(), "[1,2,3]");
        assert_eq!(from_str::<Vec<u64>>("[1,2,3]").unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert("k".to_string(), 9u64);
        let json = to_string(&m).unwrap();
        assert_eq!(json, "{\"k\":9}");
        assert_eq!(
            from_str::<std::collections::BTreeMap<String, u64>>(&json).unwrap(),
            m
        );
    }

    #[test]
    fn whitespace_tolerated() {
        assert_eq!(from_str::<Vec<u64>>(" [ 1 , 2 ] ").unwrap(), vec![1, 2]);
    }
}
