//! Offline, API-compatible shim for the subset of `proptest` this
//! workspace uses: the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`option::of`], [`any`], `Just`, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the case number and seed, which (with the deterministic RNG in
//! the vendored `rand` shim) reproduces exactly. See `vendor/` in the
//! repository root for why these shims exist.
//!
//! [`Strategy`]: strategy::Strategy
//! [`any`]: arbitrary::any

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($t:ident . $n:tt),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    }

    /// Strategy produced by [`crate::arbitrary::any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(pub(crate) PhantomData<T>);
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use crate::strategy::{Any, Strategy};
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore};
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Samples an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    /// Returns the whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut StdRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut StdRng) -> u8 {
            (rng.next_u64() >> 56) as u8
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut StdRng) -> u32 {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut StdRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            // Finite, sign-symmetric values spanning a wide exponent range.
            let unit: f64 = rng.gen_range(-1.0..1.0);
            let exp: i32 = rng.gen_range(0u32..64) as i32 - 32;
            unit * 2f64.powi(exp)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec()`]: an exact size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<T>` with element strategy `S`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Option<T>` (`None` one time in four, as in proptest's
    /// default weighting).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Wraps `inner` values in `Some`, producing `None` 25% of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod test_runner {
    //! Configuration and deterministic per-case RNG derivation.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration (`ProptestConfig` in real proptest).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic RNG for (property name, case index): FNV-1a over the
    /// name, mixed with the case number.
    pub fn rng_for(name: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        StdRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
    }
}

/// The common imports: the macros, [`Strategy`](strategy::Strategy),
/// `Just`, `any`, and `ProptestConfig`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                for case in 0..config.cases {
                    let mut proptest_case_rng = $crate::test_runner::rng_for(stringify!($name), case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut proptest_case_rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),+ ) $body
            )*
        }
    };
}

/// Asserts a condition inside a property (panics, failing the case).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect bounds; maps apply.
        #[test]
        fn ranges_and_maps(x in 1usize..=8, y in (0u64..10).prop_map(|v| v * 2)) {
            prop_assert!((1..=8).contains(&x));
            prop_assert!(y % 2 == 0 && y < 20);
        }

        /// Vec sizes come from the size range; flat_map sees inner values.
        #[test]
        fn vecs_and_flat_map(
            v in crate::collection::vec(crate::arbitrary::any::<bool>(), 3),
            w in (1usize..4).prop_flat_map(|n| crate::collection::vec(Just(n), n)),
        ) {
            prop_assert_eq!(v.len(), 3);
            prop_assert!(!w.is_empty() && w.len() < 4);
            prop_assert!(w.iter().all(|&x| x == w.len()));
        }
    }

    #[test]
    fn deterministic_per_case() {
        use crate::strategy::Strategy;
        let s = 0u64..1000;
        let a = s.generate(&mut crate::test_runner::rng_for("t", 3));
        let b = s.generate(&mut crate::test_runner::rng_for("t", 3));
        assert_eq!(a, b);
    }
}
