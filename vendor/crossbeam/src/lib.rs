//! Offline, API-compatible shim for the subset of [`crossbeam` 0.8] used
//! by this workspace: `crossbeam::channel::{unbounded, Sender, Receiver,
//! RecvTimeoutError}`, implemented over `std::sync::mpsc`.
//!
//! See `vendor/` in the repository root for why these shims exist (the
//! build environment cannot reach crates.io).
//!
//! [`crossbeam` 0.8]: https://docs.rs/crossbeam/0.8

/// Multi-producer channels with timeout-aware receive.
pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel (cloneable).
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv()
        }

        /// Blocks for at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout)
        }

        /// Returns immediately with a message if one is ready.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_round_trip() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.recv().unwrap(), 2);
        }

        #[test]
        fn recv_timeout_times_out_then_disconnects() {
            let (tx, rx) = unbounded::<u8>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Timeout)
            );
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }
    }
}
