//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are
//! unavailable; this macro parses the item's `TokenStream` by hand. It
//! supports exactly the shapes this workspace derives on:
//!
//! - structs with named fields,
//! - tuple structs (newtypes serialize as their inner value),
//! - enums whose variants are unit, named-field, or tuple.
//!
//! Generics, type parameters, and serde attributes are intentionally
//! unsupported and panic at expansion time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    /// `struct Name { f1, f2, .. }`
    NamedStruct { name: String, fields: Vec<String> },
    /// `struct Name(T1, T2, ..);` with the number of fields.
    TupleStruct { name: String, arity: usize },
    /// `enum Name { .. }`
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum Variant {
    Unit(String),
    Named(String, Vec<String>),
    Tuple(String, usize),
}

/// Derives the shim's `Serialize` (conversion to `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::NamedStruct { name, fields } => {
            let entries = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        ::serde::Value::Map(vec![{entries}])
                    }}
                }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_value(&self.0)".to_string()
            } else {
                let items = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!("::serde::Value::Seq(vec![{items}])")
            };
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{ {body} }}
                }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(vn) => format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                    ),
                    Variant::Named(vn, fields) => {
                        let binds = fields.join(", ");
                        let entries = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(vec![{entries}]))]),"
                        )
                    }
                    Variant::Tuple(vn, arity) => {
                        let binds = (0..*arity)
                            .map(|i| format!("x{i}"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(x0)".to_string()
                        } else {
                            let items = (0..*arity)
                                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!("::serde::Value::Seq(vec![{items}])")
                        };
                        format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), {inner})]),"
                        )
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "impl ::serde::Serialize for {name} {{
                    fn to_value(&self) -> ::serde::Value {{
                        match self {{ {arms} }}
                    }}
                }}"
            )
        }
    };
    src.parse()
        .expect("serde shim derive: generated Serialize impl must parse")
}

/// Derives the shim's `Deserialize` (conversion from `serde::Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let src = match &item {
        Item::NamedStruct { name, fields } => {
            let inits = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get(\"{f}\").unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{
                        if !matches!(v, ::serde::Value::Map(_)) {{
                            return Err(::serde::Error::msg(\"expected map for struct {name}\"));
                        }}
                        Ok({name} {{ {inits} }})
                    }}
                }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
            } else {
                let inits = (0..*arity)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| ::serde::Error::msg(\"tuple struct too short\"))?)?"
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "match v {{
                        ::serde::Value::Seq(items) => Ok({name}({inits})),
                        _ => Err(::serde::Error::msg(\"expected sequence for {name}\")),
                    }}"
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}
                }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(vn) => Some(format!("\"{vn}\" => return Ok({name}::{vn}),")),
                    _ => None,
                })
                .collect::<Vec<_>>()
                .join("\n");
            let keyed_arms = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(_) => None,
                    Variant::Named(vn, fields) => {
                        let inits = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(inner.get(\"{f}\").unwrap_or(&::serde::Value::Null))?"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        Some(format!(
                            "if let Some(inner) = v.get(\"{vn}\") {{
                                return Ok({name}::{vn} {{ {inits} }});
                            }}"
                        ))
                    }
                    Variant::Tuple(vn, arity) => {
                        let body = if *arity == 1 {
                            format!("return Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?));")
                        } else {
                            let inits = (0..*arity)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_value(items.get({i}).ok_or_else(|| ::serde::Error::msg(\"variant tuple too short\"))?)?"
                                    )
                                })
                                .collect::<Vec<_>>()
                                .join(", ");
                            format!(
                                "return match inner {{
                                    ::serde::Value::Seq(items) => Ok({name}::{vn}({inits})),
                                    _ => Err(::serde::Error::msg(\"expected sequence variant\")),
                                }};"
                            )
                        };
                        Some(format!(
                            "if let Some(inner) = v.get(\"{vn}\") {{ {body} }}"
                        ))
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "impl ::serde::Deserialize for {name} {{
                    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{
                        if let ::serde::Value::Str(s) = v {{
                            match s.as_str() {{
                                {unit_arms}
                                _ => {{}}
                            }}
                        }}
                        {keyed_arms}
                        Err(::serde::Error::msg(\"no matching variant of {name}\"))
                    }}
                }}"
            )
        }
    };
    src.parse()
        .expect("serde shim derive: generated Deserialize impl must parse")
}

// ---- hand-rolled parsing ------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected item name, got {other}"),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported (derive on `{name}`)");
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_top_level_fields(g.stream()),
                }
            }
            other => panic!("serde shim derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde shim derive: unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Advances past any `#[...]` attributes and `pub` / `pub(...)` markers.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` plus the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

/// Collects the field names of a named-field body.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        match &tokens[i] {
            TokenTree::Ident(id) => fields.push(id.to_string()),
            other => panic!("serde shim derive: expected field name, got {other}"),
        }
        i += 1;
        // Expect `:`, then skip the type up to the next top-level comma.
        // Commas inside `<...>` generics are at this token level, so track
        // angle-bracket depth explicitly.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field, got {other}"),
        }
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

/// Counts comma-separated fields of a tuple body (commas inside generics
/// excluded via angle-depth tracking).
fn count_top_level_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
            }
            _ => trailing_comma = false,
        }
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: expected variant name, got {other}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variants.push(Variant::Named(name, parse_named_fields(g.stream())));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                variants.push(Variant::Tuple(name, count_top_level_fields(g.stream())));
                i += 1;
            }
            _ => variants.push(Variant::Unit(name)),
        }
        // Optional separator (also skips `= discriminant` forms defensively).
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}
