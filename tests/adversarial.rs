//! Integration: adversarial delays and adversarial coins.
//!
//! The model allows arbitrary finite message delays and the adversary
//! controls scheduling — but not the coins. These tests push both knobs:
//! a laggard cluster whose links are 50× slower, and pinned coins that
//! either stall the common-coin algorithm (indulgence) or force its
//! deciding round.

use one_for_all::coins::{ConstantCoin, ScriptedCoin};
use one_for_all::consensus::{Algorithm, Bit, InvariantChecker};
use one_for_all::prelude::{Backend, Scenario, Sim};
use one_for_all::scenario::DelayModel;
use one_for_all::topology::{Partition, ProcessId};
use std::sync::Arc;

#[test]
fn laggard_cluster_does_not_block_the_rest() {
    // Fig 1 right: make P[3] = {p6, p7} 50x slower. P[1] ∪ P[2] covers
    // 5 of 7 — a majority — so decisions cannot wait on the laggards.
    let partition = Partition::fig1_right();
    let slow = vec![ProcessId(5), ProcessId(6)];
    for seed in 0..5 {
        let checker = Arc::new(InvariantChecker::new());
        let out = Sim.run(
            &Scenario::new(partition.clone(), Algorithm::CommonCoin)
                .proposals_split(3)
                .delay(DelayModel::Laggard {
                    slow: slow.clone(),
                    factor: 50,
                    base: Box::new(DelayModel::Uniform { lo: 500, hi: 1500 }),
                })
                .observer(checker.clone())
                .seed(seed),
        );
        assert!(out.all_correct_decided, "seed {seed}");
        assert!(out.agreement_holds());
        checker.assert_clean();
        // The fastest deciders should not be the laggards.
        let fast_decided: Vec<u64> = (0..5)
            .filter_map(|i| out.decisions[i].map(|d| d.round))
            .collect();
        assert_eq!(fast_decided.len(), 5);
    }
}

#[test]
fn adversarial_common_coin_stalls_safely() {
    // Everyone proposes 1 but the "common coin" always returns 0: Algorithm 3
    // can never pass its line-9 test. Indulgence: no termination, no
    // wrong decision — and the estimate never drifts off 1.
    let out = Sim.run(
        &Scenario::new(Partition::even(4, 2), Algorithm::CommonCoin)
            .proposals_all(Bit::One)
            .common_coin(Arc::new(ConstantCoin(false)))
            .max_rounds(12)
            .seed(1),
    );
    assert_eq!(out.deciders(), 0, "coin never matches: no decision");
    assert!(out.agreement_holds());
    // All processes ran out the round budget rather than crashing.
    assert!(out
        .halts
        .iter()
        .all(|h| *h == Some(one_for_all::consensus::Halt::Stopped)));
}

#[test]
fn matching_coin_decides_immediately() {
    let out = Sim.run(
        &Scenario::new(Partition::even(4, 2), Algorithm::CommonCoin)
            .proposals_all(Bit::One)
            .common_coin(Arc::new(ConstantCoin(true)))
            .seed(1),
    );
    assert!(out.all_correct_decided);
    assert_eq!(out.decided_value, Some(Bit::One));
    assert_eq!(out.max_decision_round, 1);
}

#[test]
fn scripted_coin_pins_the_deciding_round() {
    // Unanimous 1s; coin reads 0, 0, 1, ... — every process must decide in
    // exactly round 3.
    let out = Sim.run(
        &Scenario::new(Partition::single_cluster(3), Algorithm::CommonCoin)
            .proposals_all(Bit::One)
            .common_coin(Arc::new(ScriptedCoin::new(vec![false, false, true])))
            .seed(9),
    );
    assert!(out.all_correct_decided);
    for d in out.decisions.iter().flatten() {
        assert_eq!(d.value, Bit::One);
        assert_eq!(d.round, 3, "decision must wait for the matching coin");
    }
}

#[test]
fn extreme_delay_variance_is_survivable() {
    // Delays spanning three orders of magnitude.
    for seed in 0..4 {
        let out = Sim.run(
            &Scenario::new(Partition::even(6, 3), Algorithm::LocalCoin)
                .proposals_split(3)
                .delay(DelayModel::Uniform { lo: 10, hi: 20_000 })
                .seed(seed),
        );
        assert!(out.all_correct_decided, "seed {seed}");
        assert!(out.agreement_holds());
    }
}
