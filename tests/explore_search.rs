//! Integration: the adversarial schedule explorer through the facade.
//!
//! The crate-level suites pin the explorer's internals; these tests pin
//! the public contract end to end: the trajectory is a pure function of
//! the explorer seed (independent of the evaluation worker count and
//! byte-identical across replays), a hand-planted bad schedule never
//! outranks what the search finds under the same mutation limits, and
//! the emitted corpus round-trips through [`load_corpus`] with pins
//! that replay.

use one_for_all::consensus::Algorithm;
use one_for_all::explore::{
    load_corpus, write_corpus, CorpusFilter, ExploreConfig, Explorer, Fitness, PinnedOutcome,
};
use one_for_all::prelude::{Backend, CrashPlan, Partition, Scenario, Sim};

fn base() -> Scenario {
    Scenario::new(Partition::even(12, 3), Algorithm::CommonCoin)
        .proposals_split(5)
        .max_rounds(16)
}

fn config(seed: u64) -> ExploreConfig {
    ExploreConfig {
        seed,
        population: 6,
        generations: Some(4),
        filter: CorpusFilter {
            min_rounds: Some(4),
            min_undecided: Some(1),
        },
        ..ExploreConfig::new(base())
    }
}

fn state_json(explorer: &Explorer) -> String {
    serde_json::to_string(explorer.state()).unwrap()
}

#[test]
fn trajectory_is_independent_of_worker_count_and_replays_byte_for_byte() {
    let mut serial = Explorer::new(ExploreConfig {
        workers: 1,
        ..config(42)
    });
    let mut wide = Explorer::new(ExploreConfig {
        workers: 4,
        ..config(42)
    });
    serial.run();
    wide.run();
    // Worker count changes evaluation parallelism only — the serialized
    // state (baseline, best, corpus, full per-generation history) is
    // byte-identical, which is exactly what `--log` files are made of.
    assert_eq!(state_json(&serial), state_json(&wide));
    let log: Vec<String> = serial
        .state()
        .history
        .iter()
        .map(|rec| serde_json::to_string(rec).unwrap())
        .collect();
    let replay: Vec<String> = wide
        .state()
        .history
        .iter()
        .map(|rec| serde_json::to_string(rec).unwrap())
        .collect();
    assert_eq!(log, replay);
    assert_eq!(log.len(), 4, "one record per generation");
}

#[test]
fn search_outranks_a_hand_planted_bad_schedule() {
    // A schedule a human adversary might plant: crash a minority at
    // various points so decisions drag. The explorer searches the same
    // space under the same limits — whatever it finds must be at least
    // this bad, or guided search would be worse than guessing.
    let planted = base()
        .crashes(
            CrashPlan::new()
                .crash_at_step(one_for_all::topology::ProcessId(0), 0)
                .crash_at_round(one_for_all::topology::ProcessId(4), 2)
                .crash_at_round(one_for_all::topology::ProcessId(8), 3),
        )
        .seed(7);
    let planted_fitness = Fitness::of(12, &Sim.run(&planted));
    assert!(!planted_fitness.violation, "the planted schedule is safe");

    let mut explorer = Explorer::new(config(3));
    explorer.run();
    let best = explorer.best().expect("a finished search has a best");
    assert!(
        best.fitness >= planted_fitness,
        "explorer best {:?} outranked by the planted schedule {planted_fitness:?}",
        best.fitness
    );
}

#[test]
fn emitted_corpus_round_trips_and_replays_pinned() {
    let mut explorer = Explorer::new(config(21));
    explorer.run();
    assert!(
        !explorer.corpus().is_empty(),
        "this search is known to find corpus-worthy schedules"
    );
    let dir = std::env::temp_dir().join(format!("ofa-explore-search-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let written = write_corpus(&dir, explorer.corpus()).unwrap();
    let loaded = load_corpus(&dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
    assert_eq!(written, loaded.len());
    for entry in &loaded {
        // Same schedule, fresh run: the pin (trace hash included) holds.
        let outcome = Sim.run(&entry.scenario);
        assert_eq!(
            PinnedOutcome::of(&outcome),
            entry.pinned,
            "{} does not replay its pinned outcome",
            entry.name
        );
        assert!(
            explorer.config().filter.admits(&entry.fitness),
            "{} slipped past the corpus filter",
            entry.name
        );
    }
}
