//! Integration: bit-for-bit deterministic replay of whole executions.

use one_for_all::consensus::Algorithm;
use one_for_all::prelude::{Backend, CrashPlan, Outcome, Scenario, Sim};
use one_for_all::scenario::DelayModel;
use one_for_all::topology::{Partition, ProcessId};

fn scenario(seed: u64, keep: bool) -> Scenario {
    let mut sc = Scenario::new(Partition::fig1_right(), Algorithm::LocalCoin)
        .proposals_split(3)
        .delay(DelayModel::Uniform { lo: 100, hi: 900 })
        .crashes(CrashPlan::new().crash_at_step(ProcessId(6), 9))
        .seed(seed);
    if keep {
        sc = sc.keep_trace();
    }
    sc
}

fn run(seed: u64, keep: bool) -> Outcome {
    Sim.run(&scenario(seed, keep))
}

#[test]
fn same_seed_replays_identically() {
    let a = run(7, false);
    let b = run(7, false);
    assert_eq!(a.trace_hash, b.trace_hash);
    assert!(a.trace_hash.is_some());
    assert_eq!(a.decided_value, b.decided_value);
    assert_eq!(a.latest_decision_time, b.latest_decision_time);
    assert_eq!(a.events_processed, b.events_processed);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.decisions, b.decisions);
}

#[test]
fn serde_round_tripped_scenario_replays_identically() {
    // The scenario value itself is the replay artifact: serialize, parse
    // back, re-run — same trace hash.
    let sc = scenario(21, false);
    let json = serde_json::to_string(&sc).expect("scenario serializes");
    let replay: Scenario = serde_json::from_str(&json).expect("scenario parses");
    let a = Sim.run(&sc);
    let b = Sim.run(&replay);
    assert_eq!(a.trace_hash, b.trace_hash);
    assert_eq!(a.decisions, b.decisions);
}

#[test]
fn different_seeds_schedule_differently() {
    let hashes: Vec<u64> = (0..8)
        .map(|s| run(s, false).trace_hash.expect("sim always hashes"))
        .collect();
    let distinct: std::collections::HashSet<u64> = hashes.iter().copied().collect();
    assert!(
        distinct.len() >= 7,
        "8 seeds should give (almost) 8 schedules: {hashes:?}"
    );
}

#[test]
fn trace_retention_does_not_change_the_execution() {
    let lean = run(11, false);
    let fat = run(11, true);
    assert_eq!(lean.trace_hash, fat.trace_hash);
    assert!(lean.events.is_none());
    let events = fat.events.expect("trace kept");
    assert_eq!(events.len() as u64, {
        // hash-only recorder counted the same number of events
        let mut recorder = one_for_all::sim::TraceRecorder::new(false);
        for e in &events {
            recorder.record(e.at, e.event);
        }
        recorder.count()
    });
}

#[test]
fn crash_timing_is_part_of_the_replayed_state() {
    // Same seed but different crash step: different trace.
    let base = run(3, false);
    let shifted = Sim.run(
        &Scenario::new(Partition::fig1_right(), Algorithm::LocalCoin)
            .proposals_split(3)
            .delay(DelayModel::Uniform { lo: 100, hi: 900 })
            .crashes(CrashPlan::new().crash_at_step(ProcessId(6), 10))
            .seed(3),
    );
    assert_ne!(base.trace_hash, shifted.trace_hash);
}
