//! Integration: randomized crash storms — safety always, liveness exactly
//! when the §III-B predicate says so.

use one_for_all::consensus::{Algorithm, InvariantChecker};
use one_for_all::prelude::{Backend, CrashPlan, Scenario, Sim};
use one_for_all::topology::{predicate, Partition, ProcessId, ProcessSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

#[test]
fn storm_of_random_at_start_crashes() {
    let mut rng = StdRng::seed_from_u64(2024);
    for trial in 0..40u64 {
        let n = rng.gen_range(3..=8);
        let m = rng.gen_range(1..=n);
        let partition = Partition::random(n, m, &mut rng);
        let crash_count = rng.gen_range(0..n);
        let mut crashed = ProcessSet::empty(n);
        while crashed.len() < crash_count {
            crashed.insert(ProcessId(rng.gen_range(0..n)));
        }
        let holds = predicate::guarantees_termination(&partition, &crashed);
        let checker = Arc::new(InvariantChecker::new());
        let out = Sim.run(
            &Scenario::new(partition.clone(), Algorithm::CommonCoin)
                .proposals_split(n / 2)
                .crashes(CrashPlan::new().crash_set_at_start(&crashed))
                .observer(checker.clone())
                .max_rounds(if holds { 256 } else { 12 })
                .seed(trial),
        );
        checker.assert_clean();
        assert!(out.agreement_holds(), "trial {trial}: {partition}");
        assert_eq!(
            out.all_correct_decided, holds,
            "trial {trial}: predicate {holds} but termination {} ({partition}, crashed {crashed})",
            out.all_correct_decided
        );
    }
}

#[test]
fn storm_of_mid_run_crashes_stays_safe() {
    let mut rng = StdRng::seed_from_u64(99);
    for trial in 0..25u64 {
        let n = rng.gen_range(4..=8);
        let partition = Partition::even(n, rng.gen_range(1..=n / 2).max(1));
        let mut plan = CrashPlan::new();
        // Crash up to half the processes at random step indices (so
        // mid-broadcast partial deliveries occur).
        for i in 0..n / 2 {
            if rng.gen_bool(0.7) {
                plan = plan.crash_at_step(ProcessId(i), rng.gen_range(1..40));
            }
        }
        let checker = Arc::new(InvariantChecker::new());
        let out = Sim.run(
            &Scenario::new(partition.clone(), Algorithm::LocalCoin)
                .proposals_split(n / 2)
                .crashes(plan)
                .observer(checker.clone())
                .max_rounds(64)
                .seed(trial),
        );
        checker.assert_clean();
        assert!(out.agreement_holds(), "trial {trial}");
        // Liveness depends on which clusters survive — only safety is
        // universal here; deciding processes all agree on a proposed value.
        if let Some(v) = out.decided_value {
            assert!(out.decided(v));
        }
    }
}

#[test]
fn crash_at_round_boundaries() {
    for round in 1..=3u64 {
        let out = Sim.run(
            &Scenario::new(Partition::fig1_right(), Algorithm::LocalCoin)
                .proposals_split(3)
                .crashes(
                    CrashPlan::new()
                        .crash_at_round(ProcessId(0), round)
                        .crash_at_round(ProcessId(6), round),
                )
                .seed(round),
        );
        assert!(out.agreement_holds());
        assert!(out.all_correct_decided, "P[2] alone has a majority");
    }
}

#[test]
fn runtime_crash_storm_is_safe() {
    use one_for_all::prelude::Threads;
    for seed in 0..5u64 {
        let out = Threads.run(
            &Scenario::new(Partition::fig1_right(), Algorithm::CommonCoin)
                .proposals_split(4)
                .crashes(
                    CrashPlan::new()
                        .crash_at_step(ProcessId(1), 5 + seed)
                        .crash_at_step(ProcessId(5), 11 + seed)
                        .crash_at_start(ProcessId(0)),
                )
                .seed(seed),
        );
        assert!(out.agreement_holds(), "seed {seed}");
        assert!(out.all_correct_decided, "seed {seed}: P[2] retains members");
    }
}
