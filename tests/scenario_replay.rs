//! Property tests for scenario serialization and replay: any declarative
//! [`Scenario`] (1) serde round-trips losslessly and (2) when the
//! deserialized copy is run on the deterministic backend, it reproduces
//! the original `trace_hash` bit-for-bit — i.e. the JSON *is* the
//! execution, byte for byte.

use one_for_all::consensus::{Algorithm, Bit};
use one_for_all::prelude::{Backend, CoinSpec, CrashPlan, Scenario, Sim};
use one_for_all::scenario::{CostModel, DelayModel, VirtualTime};
use one_for_all::topology::{Partition, ProcessId};
use proptest::prelude::*;

/// Strategy: a valid partition of up to 6 processes (compacted ids).
fn partition_strategy() -> impl Strategy<Value = Partition> {
    (1usize..=6)
        .prop_flat_map(|n| proptest::collection::vec(0usize..n.min(3), n))
        .prop_map(|raw| {
            let mut ids = raw;
            let mut seen = Vec::new();
            for &x in &ids {
                if !seen.contains(&x) {
                    seen.push(x);
                }
            }
            for x in &mut ids {
                *x = seen.iter().position(|d| d == x).unwrap();
            }
            Partition::from_assignment(&ids).expect("compacted assignment is valid")
        })
}

/// Strategy: a crash plan over `n` processes mixing all trigger kinds.
fn crash_plan_strategy(n: usize) -> impl Strategy<Value = CrashPlan> {
    proptest::collection::vec((0usize..n, 0u8..3, 0u64..40), 0..n.max(1)).prop_map(move |entries| {
        let mut plan = CrashPlan::new();
        for (p, kind, x) in entries {
            let p = ProcessId(p);
            plan = match kind {
                0 => plan.crash_at_step(p, x),
                1 => plan.crash_at_round(p, 1 + x % 8),
                _ => plan.crash_at_time(p, VirtualTime::from_ticks(x * 250)),
            };
        }
        plan
    })
}

/// Strategy: a declarative (fully serializable) scenario.
fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    partition_strategy()
        .prop_flat_map(|partition| {
            let n = partition.n();
            (
                Just(partition),
                proptest::collection::vec(any::<bool>(), n),
                0u64..10_000,
                any::<bool>(),
                crash_plan_strategy(n),
                0u8..3,  // delay model choice
                0u8..3,  // coin spec choice
                1u64..6, // sm op cost
            )
        })
        .prop_map(
            |(partition, bits, seed, common, crashes, delay_kind, coin_kind, sm_cost)| {
                let proposals: Vec<Bit> = bits.into_iter().map(Bit::from).collect();
                let algorithm = if common {
                    Algorithm::CommonCoin
                } else {
                    Algorithm::LocalCoin
                };
                let delay = match delay_kind {
                    0 => DelayModel::Constant(700),
                    1 => DelayModel::Uniform { lo: 200, hi: 900 },
                    _ => DelayModel::Laggard {
                        slow: vec![ProcessId(0)],
                        factor: 7,
                        base: Box::new(DelayModel::Uniform { lo: 300, hi: 800 }),
                    },
                };
                let coin = match coin_kind {
                    0 => CoinSpec::Seeded,
                    1 => CoinSpec::Alternating,
                    _ => CoinSpec::Scripted(vec![false, true, true]),
                };
                Scenario::new(partition, algorithm)
                    .proposals(proposals)
                    .seed(seed)
                    .delay(delay)
                    .crashes(crashes)
                    .coin(coin)
                    .costs(CostModel::new().with_sm_op_cost(sm_cost))
                    .max_rounds(24)
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Serialization is lossless: serialize → deserialize → serialize
    /// yields byte-identical JSON, and the structured fields survive.
    #[test]
    fn scenario_serde_round_trips_losslessly(scenario in scenario_strategy()) {
        let json = serde_json::to_string(&scenario).expect("scenario serializes");
        let copy: Scenario = serde_json::from_str(&json).expect("scenario deserializes");
        let json2 = serde_json::to_string(&copy).expect("copy serializes");
        prop_assert_eq!(&json2, &json, "round trip must be byte-identical");
        prop_assert_eq!(copy.partition, scenario.partition);
        prop_assert_eq!(copy.proposals, scenario.proposals);
        prop_assert_eq!(copy.seed, scenario.seed);
        prop_assert_eq!(copy.crashes, scenario.crashes);
        prop_assert_eq!(copy.network, scenario.network);
        prop_assert_eq!(copy.churn, scenario.churn);
        prop_assert_eq!(copy.costs, scenario.costs);
        prop_assert_eq!(copy.config, scenario.config);
    }

    /// Replay: running the deserialized copy reproduces the original
    /// execution bit for bit (trace hash, decisions, counters).
    #[test]
    fn deserialized_scenario_replays_bit_for_bit(scenario in scenario_strategy()) {
        let json = serde_json::to_string(&scenario).expect("scenario serializes");
        let copy: Scenario = serde_json::from_str(&json).expect("scenario deserializes");
        let original = Sim.run(&scenario);
        let replayed = Sim.run(&copy);
        prop_assert_eq!(original.trace_hash, replayed.trace_hash);
        prop_assert!(original.trace_hash.is_some());
        prop_assert_eq!(original.decisions, replayed.decisions);
        prop_assert_eq!(original.halts, replayed.halts);
        prop_assert_eq!(original.counters, replayed.counters);
        prop_assert_eq!(original.events_processed, replayed.events_processed);
        // Whatever happened, it happened safely on both.
        prop_assert!(original.agreement_holds());
    }
}
