//! The event-driven engines are drop-in replacements for the thread
//! conductor: for any declarative [`Scenario`] — random partition ×
//! **body kind (binary algorithm, multivalued workload, replicated
//! log)** × failure pattern × **network model (flat or clustered link
//! classes, lognormal jitter, asymmetric overrides, probabilistic loss
//! and duplication)** × **churn (leaves and rejoins)** × cost model ×
//! coin × seed —
//! all three engines (`Threads` × `EventDriven` × `ParallelEvent`) must
//! produce the **same** [`Outcome`]: per-process decisions, halts, crash
//! sets, agreement, counters, event counts, **client-service metrics
//! (submitted/committed/shed counts, batch counts, queue high-water
//! marks, and the full latency histogram — the corpus crosses arrival
//! processes with backpressure limits)**, and the replay trace hash, bit
//! for bit. The parallel engine must additionally be invariant under the
//! worker count.
//!
//! This is the contract that lets every existing test, experiment, and
//! scenario corpus move to the scalable engines without re-validation —
//! and what justified flipping `Scenario`'s default engine to
//! [`Engine::EventDriven`].

use one_for_all::consensus::{Algorithm, ArrivalProcess, TrafficSpec};
use one_for_all::prelude::{Backend, Engine, Partition, Scenario, Sim};
use proptest::prelude::*;

mod common;
use common::scenario_strategy;

/// The parallel-engine core guard is a perf heuristic (more shards than
/// cores falls back to `EventDriven`); pin a big count so this suite
/// exercises the parallel engine even on a single-core CI box — the
/// determinism contract never depends on the host's parallelism.
fn unlock_cores() {
    one_for_all::sim::override_available_cores(64);
}

/// A fixed traffic-driven replicated log actually serves commands — the
/// proptest corpus above proves traffic scenarios *match* across
/// engines; this pins that the dimension is not vacuous (commands are
/// submitted, batched, committed, and measured) and that the identical
/// service stats include a non-empty latency histogram.
#[test]
fn traffic_scenario_serves_commands_identically_on_all_engines() {
    unlock_cores();
    let spec = TrafficSpec {
        arrival: ArrivalProcess::Poisson { mean_gap: 120 },
        clients: 8,
        queue_cap: 16,
        batch_max: 4,
        batch_min: 0,
    };
    let scenario = Scenario::new(Partition::even(8, 4), Algorithm::LocalCoin)
        .replicated_log_traffic(Algorithm::LocalCoin, 4, spec)
        .seed(11);
    let threads = Sim.run(&scenario.clone().engine(Engine::Threads));
    let event = Sim.run(&scenario.clone().engine(Engine::EventDriven));
    let par = Sim.run(&scenario.parallel(4));
    assert_eq!(par.engine_used, Some(Engine::ParallelEvent { workers: 4 }));
    assert_eq!(threads.service, event.service);
    assert_eq!(threads.service, par.service);
    assert_eq!(threads.trace_hash, event.trace_hash);
    assert_eq!(threads.trace_hash, par.trace_hash);
    let s = &threads.service;
    assert!(s.submitted > 0, "clients submitted nothing: {s:?}");
    assert!(s.committed > 0, "nothing committed: {s:?}");
    assert!(s.batches > 0, "no batches decided: {s:?}");
    assert!(s.max_queue_depth > 0, "queue gauge never moved: {s:?}");
    assert!(!s.latency.is_empty(), "empty latency histogram: {s:?}");
    assert_eq!(s.latency.total(), s.committed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The acceptance corpus: >= 50 random seeded scenarios, each run on
    /// all three engines, must match on every observable — not just the
    /// safety predicates but the entire outcome including the replay
    /// hash. The hash is an order-independent multiset hash (so shard
    /// partials can merge), pinning the executions to the same multiset
    /// of timestamped events; the *order* is pinned indirectly, because
    /// any reordering that changes some process's delivery sequence also
    /// changes that process's behavior — and with it the per-process
    /// counters, decisions, and clocks asserted below.
    #[test]
    fn all_three_engines_produce_identical_outcomes(scenario in scenario_strategy()) {
        unlock_cores();
        // The E9 ablation preset (amplification without cluster
        // pre-agreement) deliberately breaks WA1, so agreement may
        // genuinely fail there — the multi-instance bodies hit this far
        // more often than single-shot consensus does.
        let config_is_sound = scenario.config.cluster_preagree || !scenario.config.amplify;
        let m = scenario.partition.m();
        let threads = Sim.run(&scenario.clone().engine(Engine::Threads));
        let par = Sim.run(&scenario.clone().parallel(3));
        let event = Sim.run(&scenario.engine(Engine::EventDriven));
        // The engine actually used is recorded, not guessed: every body
        // in this corpus is declarative and every delay model has a
        // positive minimum, so the only parallel fallback is the shard
        // count (single-cluster partitions have nothing to shard).
        prop_assert_eq!(threads.engine_used, Some(Engine::Threads));
        prop_assert_eq!(event.engine_used, Some(Engine::EventDriven));
        let expected_par = if m >= 2 {
            Engine::ParallelEvent { workers: 3.min(m as u64) }
        } else {
            Engine::EventDriven
        };
        prop_assert_eq!(par.engine_used, Some(expected_par));
        // The acceptance predicates…
        prop_assert_eq!(
            threads.decisions.iter().map(|d| d.map(|d| d.value)).collect::<Vec<_>>(),
            event.decisions.iter().map(|d| d.map(|d| d.value)).collect::<Vec<_>>(),
            "decided values diverged"
        );
        prop_assert_eq!(threads.agreement_holds(), event.agreement_holds());
        prop_assert_eq!(threads.deciders(), event.deciders());
        // …and the full execution fingerprint, pairwise across engines.
        for other in [&event, &par] {
            prop_assert_eq!(&threads.decisions, &other.decisions);
            prop_assert_eq!(&threads.halts, &other.halts);
            prop_assert_eq!(&threads.crashed, &other.crashed);
            prop_assert_eq!(threads.all_correct_decided, other.all_correct_decided);
            prop_assert_eq!(threads.counters, other.counters);
            prop_assert_eq!(&threads.per_process, &other.per_process);
            prop_assert_eq!(threads.trace_hash, other.trace_hash);
            prop_assert!(threads.trace_hash.is_some());
            prop_assert_eq!(threads.events_processed, other.events_processed);
            prop_assert_eq!(threads.end_time, other.end_time);
            prop_assert_eq!(threads.latest_decision_time, other.latest_decision_time);
            prop_assert_eq!(threads.sm_proposes, other.sm_proposes);
            prop_assert_eq!(threads.sm_objects, other.sm_objects);
            // Service metrics are part of the contract too: arrivals are
            // pure functions of (seed, client, k) compared against the
            // process-local virtual clock, so every engine must see the
            // same submissions, sheds, batches, queue high-water marks,
            // and the identical latency histogram.
            prop_assert_eq!(&threads.service, &other.service);
        }
        // Under sound configurations, whatever happened happened safely
        // (the ablation preset exists precisely to violate this).
        if config_is_sound {
            prop_assert!(threads.agreement_holds());
        }
    }

    /// The parallel engine is a function of the scenario alone, not of
    /// the pool size: any two worker counts (and repeated runs) produce
    /// identical outcomes on every field except the recorded engine.
    #[test]
    fn parallel_engine_is_invariant_under_worker_count(scenario in scenario_strategy()) {
        unlock_cores();
        let two = Sim.run(&scenario.clone().parallel(2));
        let many = Sim.run(&scenario.clone().parallel(7));
        let again = Sim.run(&scenario.parallel(7));
        prop_assert_eq!(&two.decisions, &many.decisions);
        prop_assert_eq!(&two.halts, &many.halts);
        prop_assert_eq!(two.counters, many.counters);
        prop_assert_eq!(&two.per_process, &many.per_process);
        prop_assert_eq!(two.trace_hash, many.trace_hash);
        prop_assert_eq!(two.events_processed, many.events_processed);
        prop_assert_eq!(two.end_time, many.end_time);
        prop_assert_eq!(&two.service, &many.service);
        prop_assert_eq!(many.trace_hash, again.trace_hash);
        prop_assert_eq!(&many.decisions, &again.decisions);
        prop_assert_eq!(many.engine_used, again.engine_used);
    }

    /// The engine knob and the workload bodies survive serde, and a
    /// deserialized event-driven scenario replays the original execution
    /// bit for bit.
    #[test]
    fn event_driven_scenarios_serde_round_trip_and_replay(scenario in scenario_strategy()) {
        let scenario = scenario.engine(Engine::EventDriven);
        let json = serde_json::to_string(&scenario).expect("scenario serializes");
        let copy: Scenario = serde_json::from_str(&json).expect("scenario deserializes");
        prop_assert_eq!(copy.engine, Engine::EventDriven);
        prop_assert_eq!(&copy.body, &scenario.body, "bodies round-trip");
        let original = Sim.run(&scenario);
        let replayed = Sim.run(&copy);
        prop_assert_eq!(original.trace_hash, replayed.trace_hash);
        prop_assert_eq!(original.decisions, replayed.decisions);
    }
}
