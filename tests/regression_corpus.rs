//! Replays the committed regression corpus (`tests/regressions/*.json`).
//!
//! Every entry is a schedule the adversarial explorer flagged as
//! unusually bad — slow to decide, leaving correct processes stuck, or
//! (should one ever be found) violating agreement — together with the
//! [`PinnedOutcome`] recorded at find time. This harness replays each
//! schedule on all three engines (`Threads`, `EventDriven`,
//! `ParallelEvent`) and requires the outcome to match the pin bit for
//! bit, trace hash included: a mismatch is a behavior change that must
//! be explained and the pin consciously regenerated, never silently
//! absorbed.
//!
//! Cluster-scale entries (`n ≥ 10³`) cost simulated megaevents per
//! engine, so their replay is `#[ignore]`d under the default (debug)
//! test profile; the CI `regression-corpus` gate runs
//! `cargo test --release --test regression_corpus -- --include-ignored`
//! to cover the whole corpus on every engine. Small entries replay
//! everywhere, debug included.

use one_for_all::explore::{load_corpus, CorpusEntry, PinnedOutcome};
use one_for_all::prelude::{Backend, Engine, Scenario, Sim};
use std::path::{Path, PathBuf};

/// Entries at or below this system size replay in the default (debug)
/// test profile; larger ones only under `--include-ignored` (release).
const SMALL_N: usize = 64;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/regressions")
}

/// The parallel engine's core guard is a perf heuristic; pin a big
/// count so the suite exercises it even on a single-core box.
fn unlock_cores() {
    one_for_all::sim::override_available_cores(64);
}

fn engines() -> [Engine; 3] {
    [
        Engine::Threads,
        Engine::EventDriven,
        Engine::ParallelEvent { workers: 3 },
    ]
}

fn replay(entry: &CorpusEntry, engine: Engine) {
    let scenario: Scenario = entry.scenario.clone().engine(engine);
    let outcome = Sim.run(&scenario);
    assert_eq!(
        PinnedOutcome::of(&outcome),
        entry.pinned,
        "regression {} drifted on {engine:?} (found by explorer seed {} at g{} p{})",
        entry.name,
        entry.found.explorer_seed,
        entry.found.generation,
        entry.found.slot,
    );
}

#[test]
fn corpus_loads_and_is_well_formed() {
    let entries = load_corpus(&corpus_dir()).expect("corpus directory parses");
    assert!(
        !entries.is_empty(),
        "the committed corpus must not be empty"
    );
    let at_scale = entries
        .iter()
        .filter(|e| e.scenario.partition.n() >= 1_000)
        .count();
    assert!(
        at_scale >= 3,
        "the corpus pins at least three cluster-scale (n >= 10^3) schedules, found {at_scale}"
    );
    for entry in &entries {
        entry.scenario.assert_valid();
        assert!(
            entry.pinned.trace_hash.is_some(),
            "{}: corpus pins must include a trace hash",
            entry.name
        );
        // No committed entry records a safety violation today; if the
        // explorer ever finds one, this assertion is the place that
        // forces the find to be triaged as an engine bug first.
        assert!(
            !entry.fitness.violation && entry.pinned.agreement_holds,
            "{}: corpus records an agreement violation — fix the engine, \
             then pin the corrected outcome",
            entry.name
        );
    }
}

#[test]
fn small_entries_replay_pinned_on_all_engines() {
    unlock_cores();
    let entries = load_corpus(&corpus_dir()).expect("corpus directory parses");
    let small: Vec<&CorpusEntry> = entries
        .iter()
        .filter(|e| e.scenario.partition.n() <= SMALL_N)
        .collect();
    assert!(!small.is_empty(), "the corpus carries small tier-1 entries");
    for entry in small {
        for engine in engines() {
            replay(entry, engine);
        }
    }
}

#[test]
#[ignore = "cluster-scale replays; run with --release -- --include-ignored (CI regression-corpus gate)"]
fn full_corpus_replays_pinned_on_all_engines() {
    unlock_cores();
    let entries = load_corpus(&corpus_dir()).expect("corpus directory parses");
    for entry in &entries {
        if entry.scenario.partition.n() <= SMALL_N {
            continue; // covered by the always-on test above
        }
        for engine in engines() {
            replay(entry, engine);
        }
    }
}
