//! Checkpoint/restore is exact on the equivalence corpus: pausing a run
//! at **every** epoch boundary and chaining the legs back together must
//! reproduce the straight-through execution bit for bit — same
//! decisions, halts, crash sets, counters, per-process accounting,
//! multiset trace hash, event count, and `end_time` — on both event
//! engines, with snapshots surviving JSON serde and hopping between
//! engines mid-run. This is the contract that lets a CI scale gate stop
//! at a time budget, upload its [`Snapshot`], and let the next scheduled
//! run pick up where it left off without changing the result.

use one_for_all::prelude::{Backend, CrashPlan, Engine, Outcome, Scenario, Sim};
use one_for_all::scenario::{DelayModel, DivergeSpec, Snapshot, VirtualTime};
use one_for_all::sim::RunOutcome;
use one_for_all::topology::{Partition, ProcessId};
use proptest::prelude::*;

mod common;
use common::scenario_strategy;

/// Pin the parallel-engine core guard open (it is a perf heuristic, not
/// a correctness knob) so this suite exercises the parallel engine even
/// on a single-core CI box.
fn unlock_cores() {
    one_for_all::sim::override_available_cores(64);
}

/// Every deterministic observable must match; only wall-clock timing is
/// allowed to differ between a straight run and a chain of resumed legs.
fn assert_same_outcome(label: &str, a: &Outcome, b: &Outcome) {
    prop_assert_eq!(&a.decisions, &b.decisions, "{}: decisions", label);
    prop_assert_eq!(&a.halts, &b.halts, "{}: halts", label);
    prop_assert_eq!(&a.crashed, &b.crashed, "{}: crashed", label);
    prop_assert_eq!(
        a.all_correct_decided,
        b.all_correct_decided,
        "{}: all_correct_decided",
        label
    );
    prop_assert_eq!(a.counters, b.counters, "{}: counters", label);
    prop_assert_eq!(&a.per_process, &b.per_process, "{}: per_process", label);
    prop_assert_eq!(a.trace_hash, b.trace_hash, "{}: trace_hash", label);
    prop_assert_eq!(
        a.events_processed,
        b.events_processed,
        "{}: events_processed",
        label
    );
    prop_assert_eq!(a.end_time, b.end_time, "{}: end_time", label);
    prop_assert_eq!(
        a.latest_decision_time,
        b.latest_decision_time,
        "{}: latest_decision_time",
        label
    );
    prop_assert_eq!(a.sm_proposes, b.sm_proposes, "{}: sm_proposes", label);
    prop_assert_eq!(a.sm_objects, b.sm_objects, "{}: sm_objects", label);
    prop_assert_eq!(a.engine_used, b.engine_used, "{}: engine_used", label);
    // Service metrics ride the snapshot too: in-flight proposer queues
    // and partially-filled latency histograms must survive the cut.
    prop_assert_eq!(&a.service, &b.service, "{}: service", label);
}

/// Runs `scenario` as a chain of single-epoch legs — pause at every
/// multiple of the delay model's minimum (the parallel engine's epoch
/// length), resume, repeat — and returns the final outcome plus the
/// first and last snapshots captured along the way.
fn run_stepped(
    scenario: &Scenario,
) -> (Outcome, Option<Box<Snapshot>>, Option<Box<Snapshot>>, u64) {
    let step = scenario.network.min_delay();
    prop_assert!(step > 0, "corpus delay models have a positive minimum");
    let mut cut = step;
    let mut first: Option<Box<Snapshot>> = None;
    let mut last: Option<Box<Snapshot>> = None;
    let mut legs: u64 = 0;
    let mut pending = Sim.run_until(scenario, VirtualTime::from_ticks(cut));
    loop {
        legs += 1;
        prop_assert!(legs < 100_000, "stepped run did not converge");
        match pending {
            RunOutcome::Done(out) => return (out, first, last, legs),
            RunOutcome::Paused(snap) => {
                prop_assert_eq!(snap.at.ticks(), cut, "pause lands on the requested cut");
                if first.is_none() {
                    first = Some(snap.clone());
                }
                last = Some(snap.clone());
                cut += step;
                pending = Sim.resume_until(&snap, VirtualTime::from_ticks(cut));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole property, on the same 64-scenario corpus that proved
    /// engine equivalence: checkpointing at every epoch and resuming
    /// changes nothing. Additionally, resuming straight to completion
    /// from the first and from the last checkpoint (what a CI gate does
    /// with an uploaded artifact — via [`Backend::run_from`]) matches
    /// too, and the first snapshot survives a JSON round trip.
    #[test]
    fn every_epoch_checkpoint_resumes_bit_for_bit(scenario in scenario_strategy()) {
        unlock_cores();
        for engine in [Engine::EventDriven, Engine::ParallelEvent { workers: 3 }] {
            let scenario = scenario.clone().engine(engine);
            let straight = Sim.run(&scenario);
            let (stepped, first, last, _) = run_stepped(&scenario);
            assert_same_outcome("stepped chain", &straight, &stepped);
            // Runs short enough to finish inside the first epoch never
            // pause; otherwise every checkpoint must resume exactly.
            for (label, snap) in [("first", &first), ("last", &last)] {
                if let Some(snap) = snap {
                    assert_same_outcome(label, &straight, &Sim.run_from(snap));
                }
            }
            if let Some(snap) = &first {
                let json = serde_json::to_string(&**snap).expect("snapshot serializes");
                let copy: Snapshot = serde_json::from_str(&json).expect("snapshot deserializes");
                prop_assert_eq!(copy.at, snap.at);
                assert_same_outcome("serde round trip", &straight, &Sim.resume(&copy));
            }
        }
    }

    /// Snapshots are engine-independent: a checkpoint taken on the
    /// sequential event engine resumes on the parallel engine (and vice
    /// versa) to the same outcome, modulo the recorded engine.
    #[test]
    fn snapshots_hop_between_engines(scenario in scenario_strategy()) {
        unlock_cores();
        let seq = scenario.clone().engine(Engine::EventDriven);
        let straight = Sim.run(&seq);
        let cut = VirtualTime::from_ticks(2 * scenario.network.min_delay());
        for (from, to) in [
            (Engine::EventDriven, Engine::ParallelEvent { workers: 3 }),
            (Engine::ParallelEvent { workers: 3 }, Engine::EventDriven),
        ] {
            match Sim.run_until(&scenario.clone().engine(from), cut) {
                RunOutcome::Done(out) => {
                    // Finished before the cut: nothing to hop (engines
                    // may differ, so only the deterministic core fields
                    // are compared).
                    prop_assert_eq!(&straight.decisions, &out.decisions);
                    prop_assert_eq!(straight.trace_hash, out.trace_hash);
                    prop_assert_eq!(straight.end_time, out.end_time);
                }
                RunOutcome::Paused(mut snap) => {
                    snap.scenario = snap.scenario.clone().engine(to);
                    let hopped = Sim.resume(&snap);
                    // `engine_used` legitimately differs across the hop.
                    prop_assert_eq!(&straight.decisions, &hopped.decisions);
                    prop_assert_eq!(&straight.per_process, &hopped.per_process);
                    prop_assert_eq!(straight.counters, hopped.counters);
                    prop_assert_eq!(straight.trace_hash, hopped.trace_hash);
                    prop_assert_eq!(straight.events_processed, hopped.events_processed);
                    prop_assert_eq!(straight.end_time, hopped.end_time);
                }
            }
        }
    }
}

/// An event budget composes with checkpointing: a stepped run hits the
/// same budget cut as a straight run.
#[test]
fn budget_cut_is_identical_across_legs() {
    unlock_cores();
    for max_events in [40u64, 400] {
        let scenario = Scenario::new(Partition::even(9, 3), Algorithm::LocalCoin)
            .proposals_split(4)
            .max_events(max_events)
            .seed(5)
            .engine(Engine::EventDriven);
        let straight = Sim.run(&scenario);
        let (stepped, _, _, _) = run_stepped(&scenario);
        assert_eq!(straight.trace_hash, stepped.trace_hash);
        assert_eq!(straight.events_processed, stepped.events_processed);
        assert_eq!(straight.end_time, stepped.end_time);
    }
}

use one_for_all::consensus::Algorithm;
use one_for_all::prelude::ChurnPlan;

/// A churn scenario (leave + rejoin, with message loss and duplication)
/// checkpoints and resumes bit for bit on both event engines — including
/// when the cut falls *between* a leave and its rejoin, so the resumed
/// leg must fire a rejoin whose leave is pre-cut history.
#[test]
fn churn_scenario_checkpoints_between_leave_and_rejoin() {
    unlock_cores();
    for engine in [Engine::EventDriven, Engine::ParallelEvent { workers: 3 }] {
        let scenario = Scenario::new(Partition::even(9, 3), Algorithm::CommonCoin)
            .proposals_split(4)
            .delay(DelayModel::Constant(500))
            .loss_ppm(30_000)
            .dup_ppm(10_000)
            .churn(
                ChurnPlan::new()
                    .leave_rejoin(
                        ProcessId(2),
                        VirtualTime::from_ticks(900),
                        VirtualTime::from_ticks(2_600),
                    )
                    .leave(ProcessId(7), VirtualTime::from_ticks(1_400)),
            )
            .seed(23)
            .engine(engine);
        let straight = Sim.run(&scenario);
        // p7 left for good; p2 rejoined and is no longer down at the end.
        assert!(straight.crashed.contains(ProcessId(7)));
        assert!(!straight.crashed.contains(ProcessId(2)));
        // Cut between p3's leave (t=900) and its rejoin (t=2600).
        let snap = match Sim.run_until(&scenario, VirtualTime::from_ticks(1_500)) {
            RunOutcome::Paused(snap) => snap,
            RunOutcome::Done(_) => panic!("run must still be in flight at the cut"),
        };
        let resumed = Sim.resume(&snap);
        assert_eq!(straight.trace_hash, resumed.trace_hash);
        assert_eq!(straight.decisions, resumed.decisions);
        assert_eq!(straight.per_process, resumed.per_process);
        assert_eq!(straight.counters, resumed.counters);
        assert_eq!(straight.events_processed, resumed.events_processed);
        assert_eq!(straight.end_time, resumed.end_time);
    }
}

/// Diverging with an empty spec is exactly a resume; diverging with an
/// extra post-cut crash equals a straight run whose crash plan carried
/// that trigger from the start (pre-cut history is unaffected by a
/// time-based trigger that fires later).
#[test]
fn diverge_rewrites_only_the_tail() {
    unlock_cores();
    let scenario = Scenario::new(Partition::even(8, 2), Algorithm::CommonCoin)
        .proposals_split(3)
        .delay(DelayModel::Constant(500))
        .seed(17)
        .engine(Engine::EventDriven);
    let cut = VirtualTime::from_ticks(800);
    let snap = match Sim.run_until(&scenario, cut) {
        RunOutcome::Paused(snap) => snap,
        RunOutcome::Done(_) => panic!("run must still be in flight at the cut"),
    };

    // Empty spec: identical to the straight-through run.
    let straight = Sim.run(&scenario);
    let replay = Sim.diverge(&snap, &DivergeSpec::new());
    assert_eq!(straight.trace_hash, replay.trace_hash);
    assert_eq!(straight.decisions, replay.decisions);
    assert_eq!(straight.end_time, replay.end_time);

    // Post-cut crash: equals the straight run that always had it. The
    // trigger sits just past the cut, well before the earliest decision
    // (~t=1566 for this seed), so it fires while the protocol is still
    // in flight.
    let crash_at = VirtualTime::from_ticks(1_000);
    let spec = DivergeSpec::new().crashes(CrashPlan::new().crash_at_time(ProcessId(1), crash_at));
    let diverged = Sim.diverge(&snap, &spec);
    let with_crash = Sim.run(
        &scenario.clone().crashes(
            scenario
                .crashes
                .clone()
                .crash_at_time(ProcessId(1), crash_at),
        ),
    );
    assert!(diverged.crashed.contains(ProcessId(1)));
    assert_eq!(with_crash.trace_hash, diverged.trace_hash);
    assert_eq!(with_crash.decisions, diverged.decisions);
    assert_eq!(with_crash.per_process, diverged.per_process);
    assert_eq!(with_crash.end_time, diverged.end_time);

    // Seed and coin overrides are deterministic: the same divergence
    // twice is the same world.
    let spec = DivergeSpec::new().seed(999);
    let once = Sim.diverge(&snap, &spec);
    let twice = Sim.diverge(&snap, &spec);
    assert_eq!(once.trace_hash, twice.trace_hash);
    assert_eq!(once.decisions, twice.decisions);
    assert_eq!(once.end_time, twice.end_time);
}

use one_for_all::consensus::{ArrivalProcess, TrafficSpec};

/// A traffic-driven replicated log checkpoints **mid-burst** and resumes
/// bit for bit on both event engines: bursts of 6 commands against a
/// batch cap of 2 keep proposer queues non-empty across cuts, and
/// commits land throughout the run, so stepping at every epoch is
/// guaranteed to cut through states with queued in-flight commands and a
/// partially-filled latency histogram — all of which must ride the
/// snapshot (including through JSON) without changing the final service
/// stats.
#[test]
fn traffic_checkpoint_mid_burst_resumes_bit_for_bit() {
    unlock_cores();
    let spec = TrafficSpec {
        arrival: ArrivalProcess::Bursty {
            burst: 6,
            period: 2_000,
            phase: 100,
        },
        clients: 9,
        queue_cap: 8,
        batch_max: 2,
        batch_min: 0,
    };
    for engine in [Engine::EventDriven, Engine::ParallelEvent { workers: 3 }] {
        let scenario = Scenario::new(Partition::even(9, 3), Algorithm::LocalCoin)
            .replicated_log_traffic(Algorithm::LocalCoin, 6, spec)
            .delay(DelayModel::Constant(500))
            .seed(29)
            .engine(engine);
        let straight = Sim.run(&scenario);
        // The workload is non-trivial: commands queued beyond one batch
        // (the mid-burst state a cut must capture), commits measured.
        assert!(straight.service.submitted > 0, "{:?}", straight.service);
        assert!(straight.service.committed > 0, "{:?}", straight.service);
        assert!(
            straight.service.max_queue_depth > 2,
            "bursts must outrun the batch cap: {:?}",
            straight.service
        );
        assert!(!straight.service.latency.is_empty());
        // Pause at every epoch boundary and chain the legs.
        let (stepped, first, _, legs) = run_stepped(&scenario);
        assert!(legs > 2, "the run must span several epochs");
        assert_same_outcome("mid-burst stepped chain", &straight, &stepped);
        // A single snapshot also survives JSON — queued commands, per-
        // client think-time state, and histogram buckets all serialize.
        let snap = first.expect("the run pauses at least once");
        let json = serde_json::to_string(&*snap).expect("snapshot serializes");
        let copy: Snapshot = serde_json::from_str(&json).expect("snapshot deserializes");
        let resumed = Sim.resume(&copy);
        assert_same_outcome("mid-burst serde resume", &straight, &resumed);
    }
}
