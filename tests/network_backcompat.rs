//! The network model is a superset of the old `DelayModel` field: a
//! scenario JSON stored *before* `NetworkModel` existed (bare
//! `DelayModel` under a `"delay"` key, no `"churn"` field) must still
//! deserialize — lifting into the equivalent flat, lossless network —
//! and must replay the pre-network-model execution **bit for bit**.
//!
//! The fixture in `tests/fixtures/pre_network_model_scenario.json` and
//! the expected trace hash below were produced by the actual
//! pre-network-model code (the tree before this subsystem landed), not
//! reconstructed by hand: that code serialized the scenario and ran it
//! on all three engines, which agreed on `trace_hash 1e282490f6326d3c`,
//! `events 176`, `end t=4838`. Any drift in the flat delay stream, the
//! counter discipline, or the serde lift breaks this test.

use one_for_all::prelude::{Backend, Engine, NetworkModel, Scenario, Sim};
use one_for_all::scenario::DelayModel;
use one_for_all::topology::ProcessId;

const FIXTURE: &str = include_str!("fixtures/pre_network_model_scenario.json");
const EXPECTED_HASH: u64 = 0x1e28_2490_f632_6d3c;
const EXPECTED_EVENTS: u64 = 176;
const EXPECTED_END: u64 = 4838;

#[test]
fn pre_network_model_json_lifts_into_a_flat_network() {
    // The fixture is genuinely legacy-shaped.
    assert!(FIXTURE.contains("\"delay\""));
    assert!(!FIXTURE.contains("\"network\""));
    assert!(!FIXTURE.contains("\"churn\""));

    let scenario: Scenario = serde_json::from_str(FIXTURE).expect("legacy JSON deserializes");
    let expected = NetworkModel::flat(DelayModel::Laggard {
        slow: vec![ProcessId(4)],
        factor: 3,
        base: Box::new(DelayModel::Uniform { lo: 200, hi: 900 }),
    });
    assert_eq!(scenario.network, expected, "bare DelayModel lifts to flat");
    assert_eq!(scenario.network.loss_ppm, 0);
    assert_eq!(scenario.network.dup_ppm, 0);
    assert!(scenario.churn.is_empty());

    // Re-serializing writes the current shape, which round-trips.
    let json = serde_json::to_string(&scenario).expect("scenario serializes");
    assert!(json.contains("\"network\""));
    let copy: Scenario = serde_json::from_str(&json).expect("current shape deserializes");
    assert_eq!(copy.network, scenario.network);
    assert_eq!(copy.crashes, scenario.crashes);
}

#[test]
fn pre_network_model_fixture_replays_bit_for_bit_on_every_engine() {
    one_for_all::sim::override_available_cores(64);
    let scenario: Scenario = serde_json::from_str(FIXTURE).expect("legacy JSON deserializes");
    for engine in [
        Engine::Threads,
        Engine::EventDriven,
        Engine::ParallelEvent { workers: 3 },
    ] {
        let out = Sim.run(&scenario.clone().engine(engine));
        assert_eq!(
            out.trace_hash,
            Some(EXPECTED_HASH),
            "{engine:?}: trace hash drifted from the pre-network-model execution"
        );
        assert_eq!(out.events_processed, EXPECTED_EVENTS, "{engine:?}: events");
        assert_eq!(out.end_time.ticks(), EXPECTED_END, "{engine:?}: end time");
        assert!(out.agreement_holds());
    }
}
