//! Integration: multivalued consensus exercised directly (below the KV
//! layer), including proposer attribution and crashed-proposer handling.

use collector::Collector;
use one_for_all::consensus::{
    Algorithm, Bit, Decision, Env, Halt, Mailbox, Payload, ProtocolConfig,
};
use one_for_all::prelude::{Backend, CrashPlan, Scenario, Sim};
use one_for_all::scenario::ProcessBody;
use one_for_all::smr::multivalued_propose;
use one_for_all::topology::{Partition, ProcessId};
use std::sync::Arc;

/// A minimal shared result collector (std Mutex; no extra test deps).
mod collector {
    use std::sync::Mutex;

    #[derive(Debug, Default)]
    pub struct Collector<T> {
        slots: Mutex<Vec<Option<T>>>,
    }

    impl<T: Clone> Collector<T> {
        pub fn with_len(n: usize) -> Self {
            Collector {
                slots: Mutex::new(vec![None; n]),
            }
        }
        pub fn put(&self, i: usize, value: T) {
            self.slots.lock().unwrap()[i] = Some(value);
        }
        pub fn all(&self) -> Vec<Option<T>> {
            self.slots.lock().unwrap().clone()
        }
    }
}

/// Runs exactly one multivalued instance per process, proposing
/// `"from-pI"`, and records each process's decision.
#[derive(Debug)]
struct OneShotMv {
    algorithm: Algorithm,
    decided: Arc<Collector<(Payload, ProcessId, u64)>>,
}

impl ProcessBody for OneShotMv {
    fn run(
        &self,
        env: &mut dyn Env,
        _proposal: Bit,
        cfg: &ProtocolConfig,
    ) -> Result<Decision, Halt> {
        let me = env.me();
        let mut mailbox = Mailbox::new();
        let mine = Payload::from_bytes(format!("from-p{}", me.index() + 1).as_bytes())
            .expect("fits payload");
        let mv = multivalued_propose(env, &mut mailbox, 0, mine, self.algorithm, cfg)?;
        self.decided
            .put(me.index(), (mv.payload, mv.proposer, mv.stages));
        Ok(Decision {
            value: Bit::Zero,
            round: mv.stages,
            relayed: false,
        })
    }
}

fn run_mv(
    partition: Partition,
    algorithm: Algorithm,
    crashes: CrashPlan,
    seed: u64,
) -> Vec<Option<(Payload, ProcessId, u64)>> {
    let collector = Arc::new(Collector::with_len(partition.n()));
    let body = Arc::new(OneShotMv {
        algorithm,
        decided: Arc::clone(&collector),
    });
    let out = Sim.run(
        &Scenario::new(partition, algorithm)
            .custom_body(body)
            .crashes(crashes)
            .seed(seed),
    );
    assert!(out.agreement_holds());
    collector.all()
}

#[test]
fn all_processes_decide_the_same_proposal() {
    for algorithm in Algorithm::ALL {
        for seed in 0..4 {
            let decided = run_mv(Partition::fig1_left(), algorithm, CrashPlan::new(), seed);
            let first = decided[0].expect("p1 decided");
            for (i, d) in decided.iter().enumerate() {
                let d = (*d).unwrap_or_else(|| panic!("p{} undecided", i + 1));
                assert_eq!(d.0, first.0, "payload agreement");
                assert_eq!(d.1, first.1, "proposer agreement");
            }
            // Validity: the decided payload is really that proposer's.
            let expect = format!("from-p{}", first.1.index() + 1);
            assert_eq!(first.0.as_bytes(), expect.as_bytes());
        }
    }
}

#[test]
fn crashed_proposers_are_skipped() {
    // Crash p1 and p2 at start (fig1-right leaves the majority cluster
    // P[2] = {p2..p5} with three live members — predicate holds).
    let crashes = CrashPlan::new()
        .crash_at_start(ProcessId(0))
        .crash_at_start(ProcessId(1));
    let decided = run_mv(Partition::fig1_right(), Algorithm::CommonCoin, crashes, 3);
    let survivors: Vec<(Payload, ProcessId, u64)> = decided
        .iter()
        .enumerate()
        .filter(|(i, _)| ![0usize, 1].contains(i))
        .map(|(i, d)| (*d).unwrap_or_else(|| panic!("p{} undecided", i + 1)))
        .collect();
    let first = &survivors[0];
    for d in &survivors {
        assert_eq!(d.0, first.0);
    }
    // The adopted proposer must be a live process — crashed-at-start
    // processes never disseminated a proposal.
    assert!(
        first.1.index() >= 2,
        "proposer {} crashed at start",
        first.1
    );
}

#[test]
fn stage_counts_are_small_when_everyone_is_alive() {
    let decided = run_mv(
        Partition::even(5, 2),
        Algorithm::CommonCoin,
        CrashPlan::new(),
        11,
    );
    for d in decided.iter().flatten() {
        assert!(
            d.2 <= 5,
            "an early stage should adopt a live proposer (stages = {})",
            d.2
        );
    }
}
