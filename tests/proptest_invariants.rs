//! Property-based tests over the whole stack.

use one_for_all::consensus::{Algorithm, Bit, InvariantChecker, Payload};
use one_for_all::prelude::{Backend, CrashPlan, Scenario, Sim};
use one_for_all::topology::{predicate, Partition, ProcessId, ProcessSet};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Strategy: a valid partition of up to 8 processes.
fn partition_strategy() -> impl Strategy<Value = Partition> {
    (1usize..=8)
        .prop_flat_map(|n| (Just(n), proptest::collection::vec(0usize..n.min(4), n)))
        .prop_map(|(n, raw)| {
            // Compact cluster ids into a contiguous range.
            let mut ids: Vec<usize> = raw.clone();
            let distinct: Vec<usize> = {
                let mut seen = Vec::new();
                for &x in &ids {
                    if !seen.contains(&x) {
                        seen.push(x);
                    }
                }
                seen
            };
            for x in &mut ids {
                *x = distinct.iter().position(|d| d == x).unwrap();
            }
            let _ = n;
            Partition::from_assignment(&ids).expect("compacted assignment is valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Consensus properties hold for random partitions, proposal vectors,
    /// and seeds (no crashes).
    #[test]
    fn consensus_holds_on_random_systems(
        partition in partition_strategy(),
        proposal_bits in proptest::collection::vec(any::<bool>(), 8),
        seed in 0u64..1_000,
        common in any::<bool>(),
    ) {
        let n = partition.n();
        let proposals: Vec<Bit> = (0..n).map(|i| Bit::from(proposal_bits[i])).collect();
        let algorithm = if common { Algorithm::CommonCoin } else { Algorithm::LocalCoin };
        let checker = Arc::new(InvariantChecker::new());
        let out = Sim.run(&Scenario::new(partition, algorithm)
            .proposals(proposals.clone())
            .observer(checker.clone())
            .seed(seed));
        prop_assert!(out.all_correct_decided);
        prop_assert!(out.agreement_holds());
        let v = out.decided_value.unwrap();
        prop_assert!(proposals.contains(&v), "validity");
        checker.assert_clean();
    }

    /// With random at-start crashes, safety always holds and termination
    /// equals the §III-B predicate.
    #[test]
    fn predicate_matches_termination(
        partition in partition_strategy(),
        crash_bits in proptest::collection::vec(any::<bool>(), 8),
        seed in 0u64..1_000,
    ) {
        let n = partition.n();
        let mut crashed = ProcessSet::empty(n);
        for (i, &crash) in crash_bits.iter().enumerate().take(n) {
            if crash {
                crashed.insert(ProcessId(i));
            }
        }
        if crashed.len() == n {
            crashed.remove(ProcessId(0)); // keep one process alive
        }
        let holds = predicate::guarantees_termination(&partition, &crashed);
        let out = Sim.run(&Scenario::new(partition, Algorithm::CommonCoin)
            .proposals_split(n / 2)
            .crashes(CrashPlan::new().crash_set_at_start(&crashed))
            .max_rounds(if holds { 256 } else { 10 })
            .seed(seed));
        prop_assert!(out.agreement_holds());
        prop_assert_eq!(out.all_correct_decided, holds);
    }

    /// `ProcessSet` behaves like `BTreeSet<usize>`.
    #[test]
    fn process_set_is_a_set(
        ops in proptest::collection::vec((0usize..64, any::<bool>()), 0..60),
    ) {
        let mut subject = ProcessSet::empty(64);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for (i, insert) in ops {
            if insert {
                prop_assert_eq!(subject.insert(ProcessId(i)), model.insert(i));
            } else {
                prop_assert_eq!(subject.remove(ProcessId(i)), model.remove(&i));
            }
        }
        prop_assert_eq!(subject.len(), model.len());
        let got: Vec<usize> = subject.iter().map(|p| p.index()).collect();
        let want: Vec<usize> = model.iter().copied().collect();
        prop_assert_eq!(got, want);
        prop_assert_eq!(subject.is_majority_of(64), model.len() * 2 > 64);
    }

    /// The fault-tolerance frontier's witness crash set always satisfies
    /// the predicate and has exactly the advertised size.
    #[test]
    fn frontier_witness_is_consistent(partition in partition_strategy()) {
        let f = predicate::frontier(&partition);
        let witness = predicate::witness_crash_set(&partition);
        prop_assert_eq!(witness.len(), f.max_tolerated_crashes);
        prop_assert!(predicate::guarantees_termination(&partition, &witness));
        prop_assert!(f.max_tolerated_crashes >= f.message_passing_bound);
    }

    /// Payload round-trips arbitrary byte strings up to the limit.
    #[test]
    fn payload_round_trips(data in proptest::collection::vec(any::<u8>(), 0..=31)) {
        let p = Payload::from_bytes(&data).expect("within limit");
        prop_assert_eq!(p.as_bytes(), &data[..]);
        prop_assert_eq!(p.len(), data.len());
    }

    /// The tolerance table's two columns are monotone and consistent.
    #[test]
    fn tolerance_table_is_monotone(partition in partition_strategy()) {
        let rows = predicate::tolerance_table(&partition);
        prop_assert_eq!(rows.len(), partition.n());
        let mut prev_all = true;
        let mut prev_some = true;
        for row in &rows {
            prop_assert!(!row.all_patterns || row.some_pattern);
            prop_assert!(prev_all || !row.all_patterns);
            prop_assert!(prev_some || !row.some_pattern);
            prev_all = row.all_patterns;
            prev_some = row.some_pattern;
        }
    }
}
