//! Smoke tests for the build surface itself: the facade's re-exports
//! resolve and do what the README promises, and the serde plumbing
//! (vendored shim + derive) round-trips a real config type.
//!
//! These tests exist so a manifest/workspace regression (a dropped
//! re-export, a crate falling out of the facade, a broken derive) fails
//! `cargo test` loudly instead of surfacing in downstream code.

use one_for_all::consensus::{Algorithm, ProtocolConfig};
use one_for_all::prelude::*;
use one_for_all::topology::Partition;

/// Every facade module path named in the crate-level table resolves and
/// exposes its headline type.
#[test]
fn facade_reexports_resolve() {
    // consensus (ofa-core)
    let cfg: one_for_all::consensus::ProtocolConfig = ProtocolConfig::paper();
    assert!(cfg.cluster_preagree && cfg.amplify);

    // topology (ofa-topology)
    let part: one_for_all::topology::Partition = Partition::fig1_right();
    assert_eq!(part.n(), 7);

    // sharedmem (ofa-sharedmem)
    let cons: one_for_all::sharedmem::CasConsensus<u8> =
        one_for_all::sharedmem::CasConsensus::new();
    assert_eq!(cons.propose(3), 3);

    // coins (ofa-coins)
    use one_for_all::coins::CommonCoin as _;
    let coin = one_for_all::coins::SeededCommonCoin::new(1);
    assert_eq!(coin.bit(5), coin.bit(5));

    // metrics (ofa-metrics)
    let s = one_for_all::metrics::Summary::of([1.0, 2.0, 3.0]);
    assert_eq!(s.count, 3);

    // scenario (ofa-scenario) + sim (ofa-sim), via the prelude names:
    // one Scenario, run on the Sim backend through the Backend trait.
    let scenario = Scenario::new(Partition::fig1_right(), Algorithm::CommonCoin)
        .proposals_split(3)
        .seed(42);
    let outcome: Outcome = Sim.run(&scenario);
    assert!(outcome.all_correct_decided);
    assert!(outcome.agreement_holds());
    let _ = std::any::type_name::<Sweep>();

    // runtime (ofa-runtime): the Threads backend is reachable through the
    // prelude (constructing real threads is exercised in cross_substrate).
    let _ = std::any::type_name::<Threads>();

    // The simulator's engine knob is part of the prelude surface —
    // including the cluster-sharded parallel engine.
    let _: Engine = Engine::EventDriven;
    let _: Engine = Engine::parallel();
    let _: Engine = Engine::ParallelEvent { workers: 4 };

    // smr (ofa-smr)
    let cmd = one_for_all::smr::Command::put("k", "v");
    let payload = cmd.encode().expect("short command encodes");
    assert_eq!(one_for_all::smr::Command::decode(&payload).unwrap(), cmd);

    // mm (ofa-mm) re-export resolves.
    let _ = std::any::type_name::<one_for_all::mm::MmBenOr>();

    // prelude names stay usable.
    let _ = (
        ClusterId(0),
        ProcessId(0),
        ProcessSet::empty(4),
        CrashPlan::new(),
    );
    let _ = Bit::from(true);
    let _: Option<Decision> = None;
    let _: Option<Halt> = None;
}

/// `ProtocolConfig::paper()` survives a serde round-trip, including the
/// `Option<u64>` round bound in both states.
#[test]
fn protocol_config_round_trips_through_serde() {
    for cfg in [
        ProtocolConfig::paper(),
        ProtocolConfig::pure_message_passing(),
        ProtocolConfig::ablation_no_preagree(),
        ProtocolConfig::paper().with_max_rounds(64),
    ] {
        let json = serde_json::to_string(&cfg).expect("config serializes");
        let back: ProtocolConfig = serde_json::from_str(&json).expect("config deserializes");
        assert_eq!(back, cfg, "round-trip changed the config: {json}");
    }

    // The wire shape is a plain field map (stable across shim/real serde).
    let json = serde_json::to_string(&ProtocolConfig::paper()).unwrap();
    assert!(
        json.contains("\"cluster_preagree\":true"),
        "json was {json}"
    );
    assert!(json.contains("\"amplify\":true"), "json was {json}");
    assert!(json.contains("\"max_rounds\":null"), "json was {json}");
}
