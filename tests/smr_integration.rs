//! Integration: multivalued consensus and the replicated KV store built on
//! the paper's binary algorithms.

use one_for_all::consensus::Algorithm;
use one_for_all::scenario::CrashPlan;
use one_for_all::smr::{run_replicated_kv, Command};
use one_for_all::topology::{Partition, ProcessId};

fn command_streams(n: usize) -> Vec<Vec<Command>> {
    (0..n)
        .map(|i| {
            vec![
                Command::put(&format!("key{i}"), &format!("val{i}")),
                Command::put("winner", &format!("p{}", i + 1)),
                Command::del(&format!("key{}", (i + 3) % n)),
            ]
        })
        .collect()
}

#[test]
fn logs_and_states_converge_across_partitions_and_algorithms() {
    for partition in [
        Partition::fig1_left(),
        Partition::even(6, 2),
        Partition::singletons(4),
    ] {
        for algorithm in Algorithm::ALL {
            let n = partition.n();
            let (reports, out) = run_replicated_kv(
                partition.clone(),
                command_streams(n),
                3,
                algorithm,
                5,
                CrashPlan::new(),
            );
            assert!(out.all_correct_decided, "{partition} {algorithm}");
            let first = reports[0].as_ref().expect("completed");
            for r in reports.iter().flatten() {
                assert_eq!(r.log, first.log);
                assert_eq!(r.digest, first.digest);
            }
            // Validity: decided commands come from real streams.
            let all: Vec<Command> = command_streams(n).concat();
            for cmd in &first.log {
                assert!(all.contains(cmd));
            }
        }
    }
}

#[test]
fn kv_survives_heavy_crashes_with_majority_cluster() {
    // Fig 1 right: crash p1, p6, p7 and two members of P[2] — two members
    // of the majority cluster survive, so the predicate still holds.
    let partition = Partition::fig1_right();
    let crashes = CrashPlan::new()
        .crash_at_start(ProcessId(0))
        .crash_at_start(ProcessId(5))
        .crash_at_start(ProcessId(6))
        .crash_at_start(ProcessId(1))
        .crash_at_start(ProcessId(4));
    let (reports, out) = run_replicated_kv(
        partition,
        command_streams(7),
        3,
        Algorithm::CommonCoin,
        9,
        crashes,
    );
    assert!(out.all_correct_decided);
    let survivors: Vec<_> = [2usize, 3]
        .iter()
        .map(|&i| reports[i].as_ref().expect("survivor completed"))
        .collect();
    assert_eq!(survivors[0].log, survivors[1].log);
    assert_eq!(survivors[0].digest, survivors[1].digest);
    // Only members of P[2] can have proposed the decided commands (the
    // others never ran).
    for p in &survivors[0].proposers {
        assert!(
            (1..=4).contains(&p.index()),
            "proposer {p} crashed at start"
        );
    }
}

#[test]
fn decided_state_reflects_the_log_order() {
    let partition = Partition::even(4, 2);
    let (reports, out) = run_replicated_kv(
        partition,
        command_streams(4),
        4,
        Algorithm::LocalCoin,
        17,
        CrashPlan::new(),
    );
    assert!(out.all_correct_decided);
    let r = reports[0].as_ref().unwrap();
    // Replaying the log on a fresh state machine reproduces the digest.
    let mut replay = one_for_all::smr::KvState::new();
    for cmd in &r.log {
        replay.apply(cmd);
    }
    assert_eq!(replay.digest(), r.digest);
    assert_eq!(replay, r.state);
}
