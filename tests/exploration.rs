//! Integration: exhaustive schedule exploration of small systems.

use one_for_all::consensus::{Algorithm, Bit, ProtocolConfig};
use one_for_all::sim::{CrashPlan, Explorer};
use one_for_all::topology::{Partition, ProcessId};

#[test]
fn two_cluster_three_process_system_is_safe_on_thousands_of_schedules() {
    for algorithm in Algorithm::ALL {
        let report = Explorer::new(Partition::from_sizes(&[2, 1]).unwrap(), algorithm)
            .proposals_split(1)
            .max_rounds(1)
            .max_schedules(4_000)
            .run();
        assert!(report.is_safe(), "{algorithm}: {report:?}");
        assert!(report.schedules_run >= 100, "{algorithm}: {report:?}");
    }
}

#[test]
fn exploration_with_a_crashed_member_keeps_amplification_sound() {
    // p2 of the 2-cluster crashes at start: p1 alone represents P[1].
    let report = Explorer::new(
        Partition::from_sizes(&[2, 1]).unwrap(),
        Algorithm::CommonCoin,
    )
    .proposals(vec![Bit::One, Bit::Zero, Bit::Zero])
    .crashes(CrashPlan::new().crash_at_start(ProcessId(1)))
    .max_rounds(2)
    .max_schedules(3_000)
    .run();
    assert!(report.is_safe(), "{report:?}");
}

#[test]
fn ablation_violations_are_reachable_by_exploration() {
    // Without cluster pre-agreement, amplification is unsound: in
    // {p1,p2} {p3} with p1 proposing 1 and p2 proposing 0, a receiver
    // whose first delivery is p1's message exits the phase-1 exchange with
    // est2 = 1 (the whole cluster credited), while one that hears p2 first
    // exits with est2 = 0 — a WA1 violation two deliveries deep, which the
    // explorer must find.
    let report = Explorer::new(
        Partition::from_sizes(&[2, 1]).unwrap(),
        Algorithm::LocalCoin,
    )
    .config(ProtocolConfig::ablation_no_preagree().with_max_rounds(1))
    .proposals(vec![Bit::One, Bit::Zero, Bit::Zero])
    .max_schedules(4_000)
    .run();
    assert!(
        report.invariant_violations > 0,
        "exploration should find a WA1-breaking schedule: {report:?}"
    );
    // The faithful configuration is clean on the same scenario.
    let clean = Explorer::new(
        Partition::from_sizes(&[2, 1]).unwrap(),
        Algorithm::LocalCoin,
    )
    .max_rounds(1)
    .proposals(vec![Bit::One, Bit::Zero, Bit::Zero])
    .max_schedules(4_000)
    .run();
    assert!(clean.is_safe(), "{clean:?}");
}

#[test]
fn unanimous_input_decides_it_on_every_schedule() {
    // Local coin: unanimity decides in round 1 on *every* schedule (the
    // common-coin variant would additionally need a matching coin).
    let report = Explorer::new(Partition::from_sizes(&[3]).unwrap(), Algorithm::LocalCoin)
        .proposals(vec![Bit::Zero; 3])
        .max_rounds(1)
        .max_schedules(3_000)
        .run();
    assert!(report.is_safe());
    assert!(report.values_decided[0]);
    assert!(!report.values_decided[1], "validity on all schedules");
    assert_eq!(report.schedules_with_undecided, 0);
}
