//! Property-based tests of the substrate crates (shared memory, graphs,
//! coins, metrics).

use one_for_all::coins::{CommonCoin, SeededCommonCoin};
use one_for_all::metrics::{Histogram, Summary};
use one_for_all::sharedmem::{CasConsensus, ClusterMemory, CodableValue, Slot};
use one_for_all::topology::{MmGraph, ProcessId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A consensus object decides the first proposal and never changes.
    #[test]
    fn cas_consensus_is_first_wins(proposals in proptest::collection::vec(0u8..=255, 1..20)) {
        let cons: CasConsensus<u8> = CasConsensus::new();
        let first = proposals[0];
        for &p in &proposals {
            prop_assert_eq!(cons.propose(p), first);
        }
        prop_assert_eq!(cons.decided(), Some(first));
        prop_assert_eq!(cons.proposal_count(), proposals.len() as u64);
    }

    /// Codable round-trips for nested Option encodings (the est2 domain).
    #[test]
    fn codable_option_round_trips(v in proptest::option::of(proptest::option::of(any::<bool>()))) {
        let enc = v.encode();
        prop_assert!(enc < u64::MAX);
        prop_assert_eq!(Option::<Option<bool>>::decode(enc), v);
    }

    /// Distinct slots of one cluster memory are independent; the same slot
    /// always agrees.
    #[test]
    fn cluster_memory_slot_independence(
        slots in proptest::collection::vec((0u64..4, 1u64..4, 0u8..3, 0u64..100), 1..40),
    ) {
        let mem = ClusterMemory::new();
        let mut model: std::collections::HashMap<(u64, u64, u8), u64> =
            std::collections::HashMap::new();
        for (instance, round, phase, value) in slots {
            let slot = Slot::in_instance(instance, round, phase);
            let got = mem.propose_raw(slot, value);
            let want = *model.entry((instance, round, phase)).or_insert(value);
            prop_assert_eq!(got, want);
        }
        prop_assert_eq!(mem.object_count(), model.len());
    }

    /// Graph degree sums equal twice the edge count, and every domain
    /// contains its center.
    #[test]
    fn graph_handshake_lemma(n in 2usize..20, p in 0.0f64..1.0, seed in any::<u64>()) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = MmGraph::random_gnp(n, p, &mut rng);
        let degree_sum: usize = (0..n).map(|i| g.degree(ProcessId(i))).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
        for i in 0..n {
            prop_assert!(g.domain(ProcessId(i)).contains(ProcessId(i)));
            prop_assert_eq!(g.invocations_per_phase(ProcessId(i)), g.degree(ProcessId(i)) + 1);
        }
        prop_assert!(g.is_connected(), "spanning path guarantees connectivity");
    }

    /// The common coin is a pure function of (seed, round).
    #[test]
    fn common_coin_is_deterministic(seed in any::<u64>(), round in 1u64..10_000) {
        let a = SeededCommonCoin::new(seed);
        let b = SeededCommonCoin::new(seed);
        prop_assert_eq!(a.bit(round), b.bit(round));
    }

    /// Summary statistics respect basic order axioms.
    #[test]
    fn summary_axioms(xs in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let s = Summary::of(xs.iter().copied());
        prop_assert_eq!(s.count, xs.len());
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.p99 <= s.max);
        prop_assert!(s.std_dev >= 0.0);
    }

    /// Histogram counts and CDF are consistent.
    #[test]
    fn histogram_cdf_is_monotone(xs in proptest::collection::vec(0u64..50, 1..200)) {
        let h: Histogram = xs.iter().copied().collect();
        prop_assert_eq!(h.count(), xs.len() as u64);
        let mut prev = 0.0;
        for v in 0..=50 {
            let c = h.cdf(v);
            prop_assert!(c >= prev);
            prev = c;
        }
        prop_assert!((h.cdf(50) - 1.0).abs() < 1e-12);
        let mode = h.mode().unwrap();
        let max_freq = (0..=50).map(|v| h.frequency(v)).max().unwrap();
        prop_assert_eq!(h.frequency(mode), max_freq);
    }
}
