//! Integration: the *same* [`Scenario`] value satisfies consensus on both
//! execution substrates, driven through the backend-agnostic
//! [`Backend`] trait — the paper's "one protocol, any decomposition"
//! claim at the API level.

use one_for_all::consensus::{Algorithm, Bit, InvariantChecker};
use one_for_all::prelude::{Backend, Outcome, Scenario, Sim, Threads};
use one_for_all::topology::Partition;
use std::sync::Arc;

/// Both backends, behind the trait object the rest of this file loops
/// over — adding a third substrate would extend this list and nothing
/// else.
fn backends() -> [&'static dyn Backend; 2] {
    [&Sim, &Threads]
}

fn partitions() -> Vec<Partition> {
    vec![
        Partition::fig1_left(),
        Partition::fig1_right(),
        Partition::single_cluster(5),
        Partition::singletons(5),
        Partition::even(9, 3),
    ]
}

#[test]
fn one_scenario_value_satisfies_consensus_on_every_backend() {
    for partition in partitions() {
        for algorithm in Algorithm::ALL {
            let n = partition.n();
            // ONE scenario value per case…
            let scenario = Scenario::new(partition.clone(), algorithm)
                .proposals_split(n / 2)
                .seed(99);
            // …executed on every substrate through the Backend trait.
            for backend in backends() {
                let checker = Arc::new(InvariantChecker::new());
                let out: Outcome = backend.run(&scenario.clone().observer(checker.clone()));
                assert!(
                    out.all_correct_decided,
                    "{} {partition} {algorithm}",
                    backend.name()
                );
                assert!(out.agreement_holds(), "{}", backend.name());
                assert_eq!(out.deciders(), n, "{}", backend.name());
                checker.assert_clean();
            }
        }
    }
}

#[test]
fn simulator_satisfies_consensus_across_seeds() {
    // Seed coverage is cheap on the deterministic substrate; run more of
    // it there only.
    for partition in partitions() {
        for algorithm in Algorithm::ALL {
            for seed in 0..3 {
                let n = partition.n();
                let scenario = Scenario::new(partition.clone(), algorithm)
                    .proposals_split(n / 2)
                    .seed(seed);
                let out = Sim.run(&scenario);
                assert!(
                    out.all_correct_decided,
                    "{partition} {algorithm} seed {seed}"
                );
                assert!(out.agreement_holds());
            }
        }
    }
}

#[test]
fn unanimous_proposals_decide_that_value_on_both_substrates() {
    let partition = Partition::even(6, 2);
    for v in Bit::ALL {
        // Local coin: unanimity forces rec = {v} and a round-1 decision.
        let unanimous_lc = Scenario::new(partition.clone(), Algorithm::LocalCoin)
            .proposals_all(v)
            .seed(1);
        for backend in backends() {
            let out = backend.run(&unanimous_lc);
            assert_eq!(out.decided_value, Some(v), "{}", backend.name());
        }
        let sim = Sim.run(&unanimous_lc);
        assert_eq!(sim.max_decision_round, 1, "unanimity decides in round 1");

        // Common coin: the value is forced (validity) but the deciding
        // round is geometric — it waits for a matching coin.
        let cc = Sim.run(
            &Scenario::new(partition.clone(), Algorithm::CommonCoin)
                .proposals_all(v)
                .seed(1),
        );
        assert_eq!(cc.decided_value, Some(v));
    }
}

#[test]
fn message_counts_are_consistent_across_substrates() {
    // Same scenario, unanimous input, both substrates: one round, so the
    // phase-message count is deterministic (n broadcasts of n messages per
    // phase + decide broadcasts).
    let scenario = Scenario::new(Partition::even(4, 2), Algorithm::LocalCoin)
        .proposals_all(Bit::One)
        .seed(3);
    // Unanimous input, local coin: everyone decides in round 1 — two
    // phase broadcasts plus one decide broadcast per process,
    // 3 * 4 * 4 = 48 messages, and 2 cluster proposes per process.
    for backend in backends() {
        let out = backend.run(&scenario);
        assert_eq!(out.counters.messages_sent, 48, "{}", backend.name());
        assert_eq!(out.counters.cluster_proposes, 8, "{}", backend.name());
    }
}

#[test]
fn baselines_run_on_both_substrates() {
    use one_for_all::consensus::ProtocolConfig;
    let scenario = Scenario::new(Partition::singletons(5), Algorithm::LocalCoin)
        .config(ProtocolConfig::pure_message_passing().with_max_rounds(128))
        .proposals_split(2)
        .seed(4);
    for backend in backends() {
        let out = backend.run(&scenario);
        assert!(out.all_correct_decided, "{}", backend.name());
        assert_eq!(
            out.counters.cluster_proposes,
            0,
            "{}: baseline avoids memory",
            backend.name()
        );
    }
}

#[test]
fn outcome_timing_fields_match_their_backend() {
    let scenario = Scenario::new(Partition::fig1_left(), Algorithm::CommonCoin)
        .proposals_split(4)
        .seed(6);
    let sim = Sim.run(&scenario);
    assert!(sim.trace_hash.is_some());
    assert!(sim.events_processed > 0);
    assert!(
        sim.latest_decision.is_none(),
        "sim has no wall-clock decisions"
    );
    let rt = Threads.run(&scenario);
    assert!(rt.trace_hash.is_none(), "threads record no trace");
    assert!(rt.latest_decision.is_some());
    assert!(rt.elapsed >= rt.latest_decision.unwrap());
}
