//! Integration: the same protocol code satisfies consensus on both
//! execution substrates (deterministic simulator and real threads).

use one_for_all::consensus::{Algorithm, Bit, InvariantChecker};
use one_for_all::runtime::RuntimeBuilder;
use one_for_all::sim::SimBuilder;
use one_for_all::topology::Partition;
use std::sync::Arc;

fn partitions() -> Vec<Partition> {
    vec![
        Partition::fig1_left(),
        Partition::fig1_right(),
        Partition::single_cluster(5),
        Partition::singletons(5),
        Partition::even(9, 3),
    ]
}

#[test]
fn simulator_satisfies_consensus_everywhere() {
    for partition in partitions() {
        for algorithm in Algorithm::ALL {
            for seed in 0..3 {
                let checker = Arc::new(InvariantChecker::new());
                let n = partition.n();
                let out = SimBuilder::new(partition.clone(), algorithm)
                    .proposals_split(n / 2)
                    .observer(checker.clone())
                    .seed(seed)
                    .run();
                assert!(
                    out.all_correct_decided,
                    "{partition} {algorithm} seed {seed}"
                );
                assert!(out.agreement_holds());
                checker.assert_clean();
            }
        }
    }
}

#[test]
fn runtime_satisfies_consensus_everywhere() {
    for partition in partitions() {
        for algorithm in Algorithm::ALL {
            let checker = Arc::new(InvariantChecker::new());
            let n = partition.n();
            let out = RuntimeBuilder::new(partition.clone(), algorithm)
                .proposals_split(n / 2)
                .observer(checker.clone())
                .seed(99)
                .run();
            assert!(out.all_correct_decided, "{partition} {algorithm}");
            assert!(out.agreement_holds());
            checker.assert_clean();
        }
    }
}

#[test]
fn unanimous_proposals_decide_that_value_on_both_substrates() {
    let partition = Partition::even(6, 2);
    for v in Bit::ALL {
        // Local coin: unanimity forces rec = {v} and a round-1 decision.
        let sim = SimBuilder::new(partition.clone(), Algorithm::LocalCoin)
            .proposals_all(v)
            .seed(1)
            .run();
        assert_eq!(sim.decided_value, Some(v));
        assert_eq!(sim.max_decision_round, 1, "unanimity decides in round 1");

        // Common coin: the value is forced (validity) but the deciding
        // round is geometric — it waits for a matching coin.
        let cc = SimBuilder::new(partition.clone(), Algorithm::CommonCoin)
            .proposals_all(v)
            .seed(1)
            .run();
        assert_eq!(cc.decided_value, Some(v));

        let rt = RuntimeBuilder::new(partition.clone(), Algorithm::LocalCoin)
            .proposals_all(v)
            .seed(1)
            .run();
        assert_eq!(rt.decided_value, Some(v));
    }
}

#[test]
fn message_counts_are_consistent_across_substrates() {
    // Same partition, unanimous input, both substrates: one round, so the
    // phase-message count is deterministic (n broadcasts of n messages per
    // phase + decide broadcasts).
    let partition = Partition::even(4, 2);
    let sim = SimBuilder::new(partition.clone(), Algorithm::LocalCoin)
        .proposals_all(Bit::One)
        .seed(3)
        .run();
    let rt = RuntimeBuilder::new(partition, Algorithm::LocalCoin)
        .proposals_all(Bit::One)
        .seed(3)
        .run();
    // Unanimous input, local coin: everyone decides in round 1 — two
    // phase broadcasts plus one decide broadcast per process,
    // 3 * 4 * 4 = 48 messages, and 2 cluster proposes per process.
    assert_eq!(sim.counters.messages_sent, 48);
    assert_eq!(rt.counters.messages_sent, 48);
    assert_eq!(sim.counters.cluster_proposes, 8);
    assert_eq!(rt.counters.cluster_proposes, 8);
}

#[test]
fn baselines_run_on_both_substrates() {
    use one_for_all::consensus::ProtocolConfig;
    let partition = Partition::singletons(5);
    let sim = SimBuilder::new(partition.clone(), Algorithm::LocalCoin)
        .config(ProtocolConfig::pure_message_passing().with_max_rounds(128))
        .proposals_split(2)
        .seed(4)
        .run();
    assert!(sim.all_correct_decided);
    assert_eq!(sim.counters.cluster_proposes, 0, "baseline avoids memory");

    let rt = RuntimeBuilder::new(partition, Algorithm::CommonCoin)
        .config(ProtocolConfig::pure_message_passing().with_max_rounds(128))
        .proposals_split(2)
        .seed(4)
        .run();
    assert!(rt.all_correct_decided);
    assert_eq!(rt.counters.cluster_proposes, 0);
}
