//! Shared strategies for the cross-engine property suites: the
//! 64-scenario equivalence corpus (`engine_equivalence.rs`) and the
//! checkpoint/resume suite (`checkpoint_resume.rs`) must draw from the
//! *same* distribution — a resumed run is only proven equivalent on the
//! corpus the straight-through contract was proven on.
#![allow(dead_code)]

use one_for_all::consensus::{
    Algorithm, ArrivalProcess, Bit, Payload, ProtocolConfig, TrafficSpec,
};
use one_for_all::prelude::{ChurnPlan, CoinSpec, CrashPlan, NetworkModel, PoissonChurn, Scenario};
use one_for_all::scenario::{
    Body, CostModel, DelayModel, LatencyDist, MvWorkload, SmrWorkload, VirtualTime,
};
use one_for_all::topology::{Partition, ProcessId};
use proptest::prelude::*;

/// Strategy: a valid partition of up to 7 processes (compacted ids).
pub fn partition_strategy() -> impl Strategy<Value = Partition> {
    (1usize..=7)
        .prop_flat_map(|n| proptest::collection::vec(0usize..n.min(3), n))
        .prop_map(|raw| {
            let mut ids = raw;
            let mut seen = Vec::new();
            for &x in &ids {
                if !seen.contains(&x) {
                    seen.push(x);
                }
            }
            for x in &mut ids {
                *x = seen.iter().position(|d| d == x).unwrap();
            }
            Partition::from_assignment(&ids).expect("compacted assignment is valid")
        })
}

/// Strategy: a crash plan over `n` processes mixing all trigger kinds.
pub fn crash_plan_strategy(n: usize) -> impl Strategy<Value = CrashPlan> {
    proptest::collection::vec((0usize..n, 0u8..3, 0u64..40), 0..n.max(1)).prop_map(move |entries| {
        let mut plan = CrashPlan::new();
        for (p, kind, x) in entries {
            let p = ProcessId(p);
            plan = match kind {
                0 => plan.crash_at_step(p, x),
                1 => plan.crash_at_round(p, 1 + x % 8),
                _ => plan.crash_at_time(p, VirtualTime::from_ticks(x * 250)),
            };
        }
        plan
    })
}

/// Strategy: a declarative scenario spanning all three body kinds
/// (binary algorithm, multivalued workload, replicated log — the new
/// machines must match too), both algorithms, every delay-model shape
/// (constant delay exercises the event engine's broadcast batching),
/// every network-model shape (flat legacy, flat with loss/duplication,
/// clustered link classes with lognormal jitter, and asymmetric per-pair
/// overrides — the fate-aware scheduler paths must match too), churn
/// (scheduled leaves and rejoins with fresh mailboxes), every
/// protocol-config preset (paper, pure message passing, and the
/// WA1-breaking E9 ablation — the machines' non-amplified and
/// no-preagree paths must match too), zero and non-zero send costs, coin
/// overrides, and mixed proposals.
pub fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    partition_strategy()
        .prop_flat_map(|partition| {
            let n = partition.n();
            (
                Just(partition),
                proptest::collection::vec(any::<bool>(), n),
                0u64..10_000,
                any::<bool>(),
                crash_plan_strategy(n),
                (0u8..3, 0u8..3, 0u8..3), // delay model, coin spec, config preset
                (0u64..3, 1u64..6),       // send cost (0 => broadcasts batch), sm op cost
                // body kind, log slots, traffic kind (0 = pre-seeded
                // queues), backpressure preset
                (0u8..3, 1u64..4, 0u8..5, 0u8..3),
                // network shape, loss/dup rate preset, Poisson churn preset
                (0u8..4, 0u8..3, 0u8..3),
                // churn entries: (process, leave units, rejoin?, rejoin units)
                proptest::collection::vec((0usize..n, 1u64..8, any::<bool>(), 1u64..8), 0..3),
            )
        })
        .prop_map(
            |(
                partition,
                bits,
                seed,
                common,
                crashes,
                (delay_kind, coin_kind, cfg),
                (send, sm),
                (body_kind, slots, traffic_kind, bp_kind),
                (net_kind, rate_kind, poisson_kind),
                churn_entries,
            )| {
                let n = partition.n();
                let proposals: Vec<Bit> = bits.into_iter().map(Bit::from).collect();
                let algorithm = if common {
                    Algorithm::CommonCoin
                } else {
                    Algorithm::LocalCoin
                };
                let delay = match delay_kind {
                    0 => DelayModel::Constant(700),
                    1 => DelayModel::Uniform { lo: 200, hi: 900 },
                    _ => DelayModel::Laggard {
                        slow: vec![ProcessId(0)],
                        factor: 7,
                        base: Box::new(DelayModel::Uniform { lo: 300, hi: 800 }),
                    },
                };
                let coin = match coin_kind {
                    0 => CoinSpec::Seeded,
                    1 => CoinSpec::Alternating,
                    _ => CoinSpec::Scripted(vec![false, true, true]),
                };
                let config = match cfg {
                    0 => ProtocolConfig::paper(),
                    1 => ProtocolConfig::pure_message_passing(),
                    _ => ProtocolConfig::ablation_no_preagree(),
                };
                let payload = |tag: &str, i: usize| {
                    Payload::from_bytes(format!("{tag}{i}s{}", seed % 97).as_bytes())
                        .expect("fits the payload limit")
                };
                let body = match body_kind {
                    0 => Body::Algo(algorithm),
                    1 => Body::Multivalued(MvWorkload {
                        algorithm,
                        proposals: (0..n).map(|i| payload("mv", i)).collect(),
                    }),
                    _ => {
                        // Traffic and pre-seeded queues are mutually
                        // exclusive; traffic kind 0 keeps the original
                        // pre-seeded corpus verbatim.
                        let traffic = match traffic_kind {
                            0 => None,
                            k => {
                                let arrival = match k {
                                    1 => ArrivalProcess::Periodic {
                                        period: 130,
                                        phase: seed % 70,
                                    },
                                    2 => ArrivalProcess::Poisson { mean_gap: 160 },
                                    3 => ArrivalProcess::Bursty {
                                        burst: 4,
                                        period: 600,
                                        phase: 50,
                                    },
                                    _ => ArrivalProcess::ClosedLoop {
                                        think_lo: 90,
                                        think_hi: 400,
                                    },
                                };
                                // Backpressure presets from shed-heavy to
                                // roomy — overflow counting, batch fill,
                                // and the high-water gauge must all match
                                // across engines.
                                let (queue_cap, batch_max) = match bp_kind {
                                    0 => (2, 1),
                                    1 => (8, 4),
                                    _ => (64, 16),
                                };
                                Some(TrafficSpec {
                                    arrival,
                                    clients: n as u64 * 2,
                                    queue_cap,
                                    batch_max,
                                    batch_min: 0,
                                })
                            }
                        };
                        let queues = if traffic.is_some() {
                            Vec::new()
                        } else {
                            // Mixed queue lengths, including an empty
                            // queue (proposes empty payloads) when n > 1.
                            (0..n)
                                .map(|i| (0..i % 3).map(|j| payload("q", i * 10 + j)).collect())
                                .collect()
                        };
                        Body::ReplicatedLog(SmrWorkload {
                            algorithm,
                            slots,
                            queues,
                            traffic,
                        })
                    }
                };
                // Network shape: 0 keeps the pre-network-model flat
                // corpus verbatim (no loss/dup), the rest layer rates,
                // cluster-aware classes, and a directed asymmetric
                // override on top.
                let (loss, dup) = match rate_kind {
                    0 => (0, 0),
                    1 => (20_000, 0),
                    _ => (50_000, 30_000),
                };
                let network = match net_kind {
                    0 | 1 => NetworkModel::flat(delay),
                    2 => NetworkModel::clustered(
                        LatencyDist::Constant(300),
                        LatencyDist::LogNormal {
                            median: 900,
                            sigma_milli: 700,
                            floor: 400,
                            cap: 2500,
                        },
                    ),
                    _ => NetworkModel::clustered(
                        LatencyDist::Uniform { lo: 250, hi: 600 },
                        LatencyDist::Constant(1000),
                    )
                    .with_link(
                        ProcessId(0),
                        ProcessId(n - 1),
                        LatencyDist::Uniform { lo: 1200, hi: 1800 },
                    ),
                };
                let network = if net_kind == 0 {
                    network
                } else {
                    network.with_loss_ppm(loss).with_dup_ppm(dup)
                };
                // Churn rides on processes the crash plan leaves alone
                // (a process may not appear in both plans).
                let mut churn = ChurnPlan::new();
                for (p, lu, has_rejoin, ru) in churn_entries {
                    let p = ProcessId(p);
                    if crashes.trigger(p).is_some() {
                        continue;
                    }
                    let leave = VirtualTime::from_ticks(500 + lu * 400);
                    churn = if has_rejoin {
                        churn.leave_rejoin(
                            p,
                            leave,
                            VirtualTime::from_ticks(leave.ticks() + ru * 500),
                        )
                    } else {
                        churn.leave(p, leave)
                    };
                }
                // Poisson arrivals ride on top of (and skip processes
                // named by) the explicit plans — the rates are high
                // enough that small systems actually churn.
                churn = match poisson_kind {
                    0 => churn,
                    1 => churn.poisson(40_000),
                    _ => churn.poisson_spec(PoissonChurn {
                        rate_ppm: 120_000,
                        mean_down_ticks: 1_200,
                        horizon_ticks: 6_000,
                    }),
                };
                let mut scenario = Scenario::new(partition, algorithm)
                    .config(config)
                    .proposals(proposals)
                    .seed(seed)
                    .network(network)
                    .churn(churn)
                    .crashes(crashes)
                    .coin(coin)
                    .costs(CostModel {
                        send_cost: send,
                        recv_cost: 1,
                        sm_op_cost: sm,
                        coin_cost: 1,
                    })
                    .max_rounds(24);
                scenario.body = body;
                scenario
            },
        )
}
